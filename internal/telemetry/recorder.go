package telemetry

import (
	"fmt"
	"io"
	"sync"
)

// Event is one flight-recorder entry: a tick stamp, a short kind tag
// ("probe", "fault", "breaker", "incident"), and a preformatted detail line.
// The message is formatted at record time by the instrumentation site, so
// the recorder itself stores no pointers into live state and a dump is
// always a faithful snapshot of what was observed.
type Event struct {
	Ticks uint64
	Kind  string
	Msg   string
}

// slot is the internal ring entry. The message bytes are copied into the
// slot's reused buffer, so steady-state recording allocates nothing however
// hot the instrumented path — the string form is materialized only when a
// snapshot or dump asks for it.
type slot struct {
	ticks uint64
	kind  string
	msg   []byte
}

// FlightRecorder is a bounded ring buffer of recent events — the black box
// a degraded run is debugged from. Recording overwrites the oldest entry
// once the buffer is full, so memory stays constant however long the run;
// a dump shows the most recent window leading up to an incident. All
// methods are safe for concurrent use; a nil recorder is inert.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []slot
	total uint64 // events ever recorded; buf holds the last min(total, cap)
}

// DefaultFlightRecorderSize is the event capacity used by the CLI when none
// is configured: enough to cover several subnet explorations of probe
// history around an incident.
const DefaultFlightRecorderSize = 256

// NewFlightRecorder creates a recorder holding the last capacity events.
// Capacity must be positive.
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		panic(fmt.Sprintf("telemetry: flight recorder capacity %d < 1", capacity))
	}
	return &FlightRecorder{buf: make([]slot, 0, capacity)}
}

// Record appends one event, evicting the oldest when full.
func (f *FlightRecorder) Record(ev Event) {
	if f == nil {
		return
	}
	f.mu.Lock()
	s := f.nextSlotLocked()
	s.ticks, s.kind = ev.Ticks, ev.Kind
	s.msg = append(s.msg[:0], ev.Msg...)
	f.total++
	f.mu.Unlock()
}

// RecordBytes appends one event whose message is copied out of msg into
// slot-owned storage — the zero-alloc variant of Record for hot paths that
// render into a reused buffer. kind should be a static string.
func (f *FlightRecorder) RecordBytes(ticks uint64, kind string, msg []byte) {
	if f == nil {
		return
	}
	f.mu.Lock()
	s := f.nextSlotLocked()
	s.ticks, s.kind = ticks, kind
	s.msg = append(s.msg[:0], msg...)
	f.total++
	f.mu.Unlock()
}

// nextSlotLocked returns the slot the next event lands in: the ring grows
// until it reaches capacity, then the oldest slot (and its message buffer) is
// reused. Called with f.mu held, before total is incremented.
func (f *FlightRecorder) nextSlotLocked() *slot {
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, slot{})
		return &f.buf[len(f.buf)-1]
	}
	return &f.buf[f.total%uint64(cap(f.buf))]
}

// Total returns how many events were ever recorded (including evicted ones).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// Snapshot returns the retained events, oldest first. The returned slice and
// its messages are copies: they stay valid while recording continues.
func (f *FlightRecorder) Snapshot() []Event {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]Event, 0, len(f.buf))
	if len(f.buf) < cap(f.buf) {
		for i := range f.buf {
			out = append(out, f.buf[i].event())
		}
		return out
	}
	// Full ring: the slot about to be overwritten is the oldest event.
	start := int(f.total % uint64(cap(f.buf)))
	for i := start; i < len(f.buf); i++ {
		out = append(out, f.buf[i].event())
	}
	for i := 0; i < start; i++ {
		out = append(out, f.buf[i].event())
	}
	return out
}

// event materializes the slot as a public Event, copying the message bytes
// into a fresh string.
func (s *slot) event() Event {
	return Event{Ticks: s.ticks, Kind: s.kind, Msg: string(s.msg)}
}

// DumpTo writes an on-demand snapshot of the retained window: a header
// naming the tick and reason, then the same rendering as WriteTo. Unlike the
// incident path (Telemetry.Incident) it mutates nothing — no dump counter
// advances and recording continues undisturbed — so any number of mid-run
// snapshots (SIGTERM drain, HTTP /flightz polls) leave the eventual incident
// dumps byte-identical to a run that was never snapshotted.
func (f *FlightRecorder) DumpTo(w io.Writer, ticks uint64, reason string) error {
	if f == nil {
		_, err := fmt.Fprintln(w, "flight recorder: not armed")
		return err
	}
	if _, err := fmt.Fprintf(w, "== flight recorder snapshot at tick %d: %s\n", ticks, reason); err != nil {
		return err
	}
	_, err := f.WriteTo(w)
	return err
}

// WriteTo dumps the retained window as text, oldest first: one
// "  [tick] kind: msg" line per event, preceded by a coverage header. The
// snapshot is taken atomically; writing happens outside the recorder lock.
func (f *FlightRecorder) WriteTo(w io.Writer) (int64, error) {
	if f == nil {
		return 0, nil
	}
	events := f.Snapshot()
	total := f.Total()
	var n int64
	c, err := fmt.Fprintf(w, "flight recorder: %d of %d events retained\n", len(events), total)
	n += int64(c)
	if err != nil {
		return n, err
	}
	for _, ev := range events {
		c, err := fmt.Fprintf(w, "  [%6d] %-8s %s\n", ev.Ticks, ev.Kind, ev.Msg)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, nil
}
