// Package telemetry is tracenet's deterministic observability layer: an
// atomic metrics registry with Prometheus-text and JSON exposition, a
// hierarchical span tracer emitting Chrome trace-event JSON, and a bounded
// flight recorder of recent probe events that is dumped automatically when a
// run degrades.
//
// Everything is built on the standard library, and — deliberately — nothing
// in this package reads the wall clock or the global random stream.
// Timestamps come from an injected Clock, which in the simulated substrate is
// netsim's virtual clock, so two same-seed runs produce byte-identical
// metrics, traces, and flight-recorder dumps. That keeps the determinism
// analyzer (tracenetlint) satisfied and makes telemetry itself testable with
// golden files: the observability of a run is as replayable as the run.
//
// All entry points are nil-safe: a nil *Telemetry, nil *Counter, nil *Span,
// and so on are inert no-ops, so instrumented code pays only a nil check when
// telemetry is disabled.
package telemetry

import (
	"fmt"
	"io"
	"sync"
)

// Clock supplies timestamps in virtual ticks. netsim.Network implements it
// with its per-injection virtual clock; tests use a ManualClock. A real
// deployment would adapt a monotonic reading, accepting that its traces are
// then no longer bit-reproducible.
type Clock interface {
	Ticks() uint64
}

// ManualClock is an explicitly-advanced Clock for tests and offline tools.
// It is not safe for concurrent use with Advance; concurrent Ticks reads of
// a quiescent clock are fine.
type ManualClock struct {
	now uint64
}

// Ticks returns the current tick count.
func (c *ManualClock) Ticks() uint64 { return c.now }

// Advance moves the clock forward by d ticks.
func (c *ManualClock) Advance(d uint64) { c.now += d }

// Telemetry bundles one run's observability surfaces. Zero or more of the
// Tracer and Recorder may be absent; the Registry is always present on a
// Telemetry built with New. The struct is shared freely across goroutines:
// Registry and Recorder are internally synchronized, and the Tracer
// serializes event emission.
type Telemetry struct {
	Clock    Clock
	Registry *Registry
	Tracer   *Tracer
	Recorder *FlightRecorder

	// cIncidents is the pre-resolved tracenet_incidents_total handle:
	// Incident is reachable from the per-probe path (breaker-open events),
	// so it must not pay a by-name registry lookup per call.
	cIncidents *Counter

	mu        sync.Mutex
	incidentW io.Writer
	incidents uint64
}

// New creates a Telemetry with a fresh Registry over the given clock (which
// may be nil: timestamps then read 0). Attach a Tracer or FlightRecorder by
// assigning the fields before instrumented work starts.
func New(clock Clock) *Telemetry {
	reg := NewRegistry()
	return &Telemetry{
		Clock:      clock,
		Registry:   reg,
		cIncidents: reg.Counter("tracenet_incidents_total"),
	}
}

// Ticks reads the clock; 0 when the telemetry or its clock is absent.
func (t *Telemetry) Ticks() uint64 {
	if t == nil || t.Clock == nil {
		return 0
	}
	return t.Clock.Ticks()
}

// Counter returns the named registry counter, or a nil (inert) handle when
// telemetry is disabled. Labels are alternating key/value pairs.
func (t *Telemetry) Counter(name string, labels ...string) *Counter {
	if t == nil || t.Registry == nil {
		return nil
	}
	return t.Registry.Counter(name, labels...)
}

// Gauge returns the named registry gauge, or a nil handle when disabled.
func (t *Telemetry) Gauge(name string, labels ...string) *Gauge {
	if t == nil || t.Registry == nil {
		return nil
	}
	return t.Registry.Gauge(name, labels...)
}

// Histogram returns the named registry histogram, or a nil handle when
// disabled. See Registry.Histogram for the bucket contract.
func (t *Telemetry) Histogram(name string, buckets []uint64, labels ...string) *Histogram {
	if t == nil || t.Registry == nil {
		return nil
	}
	return t.Registry.Histogram(name, buckets, labels...)
}

// StartSpan opens a span on the tracer, stamped with the current ticks.
// Returns nil (an inert span) when no tracer is attached.
func (t *Telemetry) StartSpan(name string, args ...string) *Span {
	if t == nil || t.Tracer == nil {
		return nil
	}
	sp := t.Tracer.Start(t.Ticks(), name, args...)
	if sp != nil {
		sp.clock = t.Clock
	}
	return sp
}

// Instant emits an instant event on the tracer, if one is attached.
func (t *Telemetry) Instant(name string, args ...string) {
	if t == nil || t.Tracer == nil {
		return
	}
	t.Tracer.Instant(t.Ticks(), name, args...)
}

// Complete emits a complete ("X") event spanning [start, end] ticks.
func (t *Telemetry) Complete(name string, start, end uint64, args ...string) {
	if t == nil || t.Tracer == nil {
		return
	}
	t.Tracer.Complete(start, end, name, args...)
}

// Record appends an event to the flight recorder, stamped with the current
// ticks. No-op without a recorder.
func (t *Telemetry) Record(kind, msg string) {
	if t == nil || t.Recorder == nil {
		return
	}
	t.Recorder.Record(Event{Ticks: t.Ticks(), Kind: kind, Msg: msg})
}

// RecordBytes appends a flight-recorder event whose message bytes are copied
// into recorder-owned storage, stamped with the current ticks — the zero-alloc
// variant of Record for hot paths rendering into a reused buffer.
func (t *Telemetry) RecordBytes(kind string, msg []byte) {
	if t == nil || t.Recorder == nil {
		return
	}
	t.Recorder.RecordBytes(t.Ticks(), kind, msg)
}

// RecordAt is Record with an explicit timestamp, for callers that hold the
// tick count already (netsim records under its own lock, where re-reading
// the clock through the Telemetry would deadlock).
func (t *Telemetry) RecordAt(ticks uint64, kind, msg string) {
	if t == nil || t.Recorder == nil {
		return
	}
	t.Recorder.Record(Event{Ticks: ticks, Kind: kind, Msg: msg})
}

// SetIncidentWriter arms automatic flight-recorder dumps: every Incident
// writes the recorder's current contents to w.
func (t *Telemetry) SetIncidentWriter(w io.Writer) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.incidentW = w
	t.mu.Unlock()
}

// Incident marks a degradation event (a circuit breaker opening, a subnet
// collected under fault evidence): it counts the incident, records it, emits
// an instant trace event, and — when an incident writer is armed — dumps the
// flight recorder so the probe history leading up to the incident survives
// for post-mortem analysis.
func (t *Telemetry) Incident(reason string) {
	if t == nil {
		return
	}
	t.cIncidents.Add(1)
	ticks := t.Ticks()
	t.RecordAt(ticks, "incident", reason)
	t.Instant("incident", "reason", reason)

	t.mu.Lock()
	defer t.mu.Unlock()
	t.incidents++
	if t.incidentW == nil || t.Recorder == nil {
		return
	}
	fmt.Fprintf(t.incidentW, "== flight recorder dump #%d at tick %d: %s\n",
		t.incidents, ticks, reason)
	t.Recorder.WriteTo(t.incidentW)
}

// DumpRecorder writes an on-demand flight-recorder snapshot stamped with the
// current tick — the read-only path behind SIGTERM drains and the HTTP
// /flightz endpoint. Safe without a recorder (a "not armed" line is written)
// and on a nil Telemetry.
func (t *Telemetry) DumpRecorder(w io.Writer, reason string) error {
	if t == nil {
		_, err := fmt.Fprintln(w, "flight recorder: not armed")
		return err
	}
	return t.Recorder.DumpTo(w, t.Ticks(), reason)
}

// Incidents returns how many incidents were raised so far.
func (t *Telemetry) Incidents() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.incidents
}
