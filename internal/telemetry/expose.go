package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format, families sorted by name and series sorted by label set,
// so the output of a deterministic run is byte-identical across reruns.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var lastFamily string
	for _, s := range r.sortedSeries() {
		if s.family != lastFamily {
			if _, err := fmt.Fprintf(w, "# TYPE %s %v\n", s.family, r.kindOf(s.family)); err != nil {
				return err
			}
			lastFamily = s.family
		}
		var err error
		switch {
		case s.c != nil:
			_, err = fmt.Fprintf(w, "%s%s %d\n", s.family, s.labels, s.c.Value())
		case s.g != nil:
			_, err = fmt.Fprintf(w, "%s%s %d\n", s.family, s.labels, s.g.Value())
		case s.h != nil:
			err = writePrometheusHistogram(w, s)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePrometheusHistogram renders one histogram series: cumulative
// _bucket{le=...} lines, then _sum and _count.
func writePrometheusHistogram(w io.Writer, s *series) error {
	h := s.h
	counts := h.snapshot()
	inner := s.labels
	if inner != "" {
		inner = inner[1:len(inner)-1] + "," // strip braces, keep as prefix
	}
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(h.bounds) {
			le = fmt.Sprintf("%d", h.bounds[i])
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", s.family, inner, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", s.family, s.labels, h.Sum()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.family, s.labels, h.Count())
	return err
}

// jsonHistogram is the JSON form of one histogram series.
type jsonHistogram struct {
	Buckets []uint64 `json:"buckets"` // upper bounds
	Counts  []uint64 `json:"counts"`  // per-bucket (non-cumulative), +Inf last
	Sum     uint64   `json:"sum"`
	Count   uint64   `json:"count"`
}

// jsonSnapshot is the JSON exposition schema.
type jsonSnapshot struct {
	Counters   map[string]uint64        `json:"counters,omitempty"`
	Gauges     map[string]int64         `json:"gauges,omitempty"`
	Histograms map[string]jsonHistogram `json:"histograms,omitempty"`
}

// WriteJSON renders the registry as an indented JSON document. Keys are the
// full series names (family plus rendered labels); encoding/json sorts map
// keys, so the document is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	snap := jsonSnapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]jsonHistogram{},
	}
	for _, s := range r.sortedSeries() {
		key := s.family + s.labels
		switch {
		case s.c != nil:
			snap.Counters[key] = s.c.Value()
		case s.g != nil:
			snap.Gauges[key] = s.g.Value()
		case s.h != nil:
			snap.Histograms[key] = jsonHistogram{
				Buckets: append([]uint64(nil), s.h.bounds...),
				Counts:  s.h.snapshot(),
				Sum:     s.h.Sum(),
				Count:   s.h.Count(),
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}

// Sorted key helper kept close to the exposition code so future formats reuse
// it: families in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
