package telemetry

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// buildSample populates a registry with one instrument of every family, in a
// deliberately scrambled registration order to prove exposition sorts.
func buildSample() *Registry {
	r := NewRegistry()
	r.Counter("tracenet_probes_sent_total", "proto", "udp").Add(3)
	r.Counter("tracenet_probes_sent_total", "proto", "icmp").Add(41)
	r.Gauge("tracenet_clock_ticks").Set(1234)
	h := r.Histogram("tracenet_reply_ttl", []uint64{8, 16, 32, 64})
	for _, v := range []uint64{3, 9, 61, 61, 200} {
		h.Observe(v)
	}
	r.Counter("tracenet_incidents_total").Add(2)
	return r
}

func TestCounterGaugeHistogramValues(t *testing.T) {
	r := buildSample()
	if got := r.Counter("tracenet_probes_sent_total", "proto", "icmp").Value(); got != 41 {
		t.Errorf("icmp counter = %d, want 41", got)
	}
	// Label order must not mint a new series.
	r.Counter("tracenet_labels_total", "a", "1", "b", "2").Add(1)
	r.Counter("tracenet_labels_total", "b", "2", "a", "1").Add(1)
	if got := r.Counter("tracenet_labels_total", "a", "1", "b", "2").Value(); got != 2 {
		t.Errorf("label order minted a second series: got %d, want 2", got)
	}
	g := r.Gauge("tracenet_clock_ticks")
	g.Add(-34)
	if got := g.Value(); got != 1200 {
		t.Errorf("gauge = %d, want 1200", got)
	}
	h := r.Histogram("tracenet_reply_ttl", []uint64{8, 16, 32, 64})
	if h.Count() != 5 || h.Sum() != 334 {
		t.Errorf("histogram count=%d sum=%d, want 5/334", h.Count(), h.Sum())
	}
	want := []uint64{1, 1, 0, 2, 1} // buckets ≤8, ≤16, ≤32, ≤64, +Inf
	for i, c := range h.snapshot() {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
}

func TestNilHandlesAreInert(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tel *Telemetry
	var sp *Span
	c.Add(1)
	c.Inc()
	g.Set(7)
	g.Add(1)
	h.Observe(9)
	sp.Count("x", 1)
	sp.End()
	tel.Incident("nothing")
	tel.Record("probe", "nothing")
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || sp.Get("x") != 0 ||
		tel.Ticks() != 0 || tel.Incidents() != 0 {
		t.Error("nil handles leaked state")
	}
	if tel.Counter("x") != nil || tel.StartSpan("x") != nil {
		t.Error("nil telemetry minted live handles")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("tracenet_x_total")
	defer func() {
		if recover() == nil {
			t.Error("gauge reusing a counter family did not panic")
		}
	}()
	r.Gauge("tracenet_x_total")
}

func TestHistogramBucketMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("tracenet_h", []uint64{1, 2, 4})
	defer func() {
		if recover() == nil {
			t.Error("histogram re-registered with different buckets did not panic")
		}
	}()
	r.Histogram("tracenet_h", []uint64{1, 2, 8})
}

// golden compares got against the checked-in file, rewriting it when
// -update-golden is set via the environment (UPDATE_GOLDEN=1 go test ...).
func golden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

func TestWritePrometheusGolden(t *testing.T) {
	var b strings.Builder
	if err := buildSample().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "sample_metrics.prom", b.String())
}

func TestWriteJSONGolden(t *testing.T) {
	var b strings.Builder
	if err := buildSample().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "sample_metrics.json", b.String())
}

// TestExpositionDeterministic proves two identically-driven registries render
// byte-identically — the property the CLI's same-seed guarantee rests on.
func TestExpositionDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := buildSample().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := buildSample().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two identical registries rendered differently")
	}
}
