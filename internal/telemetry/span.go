package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"sync"
)

// Tracer emits hierarchical spans in the Chrome trace-event format
// (chrome://tracing, Perfetto): a strict JSON array with one event object per
// line. Timestamps are virtual ticks (rendered in the "ts" microsecond
// field), so a same-seed simulated run produces a byte-identical trace.
//
// Nesting is positional, as the format defines: a "B" (begin) event opens a
// slice that the next unmatched "E" (end) on the same thread closes, so
// Start/End call order forms the span hierarchy (session → trace → hop →
// exploration → probe). The Tracer serializes writes internally; the span
// *hierarchy* is meaningful per goroutine, like the Prober it instruments.
type Tracer struct {
	mu     sync.Mutex
	w      io.Writer
	opened bool
	closed bool
	err    error
	events uint64
	// line is the reusable event-line buffer, guarded by mu: one event is
	// rendered into it and written out per emit, so high-volume leaf events
	// (probe exchanges) cost appends into warm storage instead of a chain of
	// string concatenations.
	line []byte
}

// NewTracer creates a tracer writing trace events to w.
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w}
}

// Events returns how many trace events were emitted so far.
func (t *Tracer) Events() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Err returns the first write error the tracer swallowed, if any.
// Instrumentation sites never handle I/O failures; callers check once at
// Close time.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close terminates the JSON array, making the output a strict, complete
// Chrome-loadable document. Further events are discarded. It returns the
// first error encountered over the tracer's lifetime.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return t.err
	}
	t.closed = true
	if !t.opened {
		t.writeLocked("[\n")
	}
	t.writeLocked("\n]\n")
	return t.err
}

// writeLocked appends s to the output, latching the first error.
// Called with t.mu held.
func (t *Tracer) writeLocked(s string) {
	if t.err != nil {
		return
	}
	_, t.err = io.WriteString(t.w, s)
}

// emit writes one event object line. args must have even length.
// counts, when non-nil, is rendered as a nested "counts" object with sorted
// keys, so the output is deterministic. The line is built in the tracer's
// reusable buffer with append-style formatting — byte-identical to the
// equivalent strconv.Quote/FormatUint concatenation it replaced.
func (t *Tracer) emit(ph string, ts uint64, dur uint64, name string, args []string, counts map[string]uint64) {
	if t == nil {
		return
	}
	if len(args)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd span arg list %q", args))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	b := t.line[:0]
	if !t.opened {
		b = append(b, "[\n"...)
		t.opened = true
	} else {
		b = append(b, ",\n"...)
	}
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"cat":"tracenet","ph":"`...)
	b = append(b, ph...)
	b = append(b, `","ts":`...)
	b = strconv.AppendUint(b, ts, 10)
	if ph == "X" {
		b = append(b, `,"dur":`...)
		b = strconv.AppendUint(b, dur, 10)
	}
	b = append(b, `,"pid":1,"tid":1`...)
	if len(args) > 0 || len(counts) > 0 {
		b = append(b, `,"args":{`...)
		first := true
		for i := 0; i < len(args); i += 2 {
			if !first {
				b = append(b, ',')
			}
			first = false
			b = strconv.AppendQuote(b, args[i])
			b = append(b, ':')
			b = strconv.AppendQuote(b, args[i+1])
		}
		if len(counts) > 0 {
			if !first {
				b = append(b, ',')
			}
			b = append(b, `"counts":{`...)
			for i, k := range sortedKeys(counts) {
				if i > 0 {
					b = append(b, ',')
				}
				b = strconv.AppendQuote(b, k)
				b = append(b, ':')
				b = strconv.AppendUint(b, counts[k], 10)
			}
			b = append(b, '}')
		}
		b = append(b, '}')
	}
	b = append(b, '}')
	t.line = b[:0]
	t.writeBytesLocked(b)
	t.events++
}

// writeBytesLocked appends b to the output, latching the first error.
// Called with t.mu held.
func (t *Tracer) writeBytesLocked(b []byte) {
	if t.err != nil {
		return
	}
	_, t.err = t.w.Write(b)
}

// Start opens a span at ts ticks, emitting its "B" event immediately. The
// returned span carries its own counter set (see Span.Count), emitted with
// the closing "E" event.
func (t *Tracer) Start(ts uint64, name string, args ...string) *Span {
	if t == nil {
		return nil
	}
	t.emit("B", ts, 0, name, args, nil)
	return &Span{t: t, name: name}
}

// Instant emits a zero-duration instant event.
func (t *Tracer) Instant(ts uint64, name string, args ...string) {
	if t == nil {
		return
	}
	t.emit("i", ts, 0, name, args, nil)
}

// Complete emits a complete ("X") event covering [start, end] ticks — the
// compact form used for high-volume leaf spans like probe exchanges.
func (t *Tracer) Complete(start, end uint64, name string, args ...string) {
	if t == nil {
		return
	}
	dur := uint64(0)
	if end > start {
		dur = end - start
	}
	t.emit("X", start, dur, name, args, nil)
}

// Span is one open slice of the trace. A span additionally acts as a scoped
// counter set: Count accumulates named values that are attached to the
// closing event, which is how per-phase accounting (probes per hop, probes
// per exploration) reaches the trace without global state. Spans follow
// their instrumented subject's concurrency contract: single-goroutine, like
// a Prober or a Session. A nil *Span is inert.
type Span struct {
	t      *Tracer
	clock  Clock // stamps End; nil when created directly on a Tracer
	name   string
	ended  bool
	counts map[string]uint64
}

// Count adds d to the span's named counter.
func (s *Span) Count(name string, d uint64) {
	if s == nil || d == 0 {
		return
	}
	if s.counts == nil {
		s.counts = make(map[string]uint64)
	}
	s.counts[name] += d
}

// Get returns the span counter's current value.
func (s *Span) Get(name string) uint64 {
	if s == nil {
		return 0
	}
	return s.counts[name]
}

// End closes the span, stamped from the clock it was created with (tick 0
// when created directly on a Tracer), emitting its "E" event with the
// accumulated counters. Multiple Ends are idempotent.
func (s *Span) End() {
	if s == nil {
		return
	}
	var ts uint64
	if s.clock != nil {
		ts = s.clock.Ticks()
	}
	s.EndAt(ts)
}

// EndAt is End with an explicit tick stamp.
func (s *Span) EndAt(ts uint64) {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.t.emit("E", ts, 0, s.name, nil, s.counts)
}
