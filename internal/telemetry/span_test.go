package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
)

// driveTrace emits a small fixed span hierarchy through a full Telemetry.
func driveTrace(w *strings.Builder) error {
	clock := &ManualClock{}
	tel := New(clock)
	tel.Tracer = NewTracer(w)

	sess := tel.StartSpan("session", "topo", "figure3")
	clock.Advance(2)
	hop := tel.StartSpan("hop", "ttl", "1")
	hop.Count("probes_sent", 3)
	hop.Count("probes_sent", 1)
	hop.Count("answered", 2)
	clock.Advance(5)
	tel.Complete("probe", 3, 5, "dst", "10.0.0.1")
	hop.End()
	hop.End() // idempotent
	tel.Instant("incident", "reason", "test")
	clock.Advance(1)
	sess.End()
	return tel.Tracer.Close()
}

func TestTracerGolden(t *testing.T) {
	var b strings.Builder
	if err := driveTrace(&b); err != nil {
		t.Fatal(err)
	}
	golden(t, "sample_trace.json", b.String())
}

// TestTracerStrictJSON proves the closed trace is one valid JSON array of
// event objects with the fields Chrome's trace viewer requires.
func TestTracerStrictJSON(t *testing.T) {
	var b strings.Builder
	if err := driveTrace(&b); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6:\n%s", len(events), b.String())
	}
	phases := ""
	for _, ev := range events {
		for _, field := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Errorf("event %v lacks %q", ev, field)
			}
		}
		phases += ev["ph"].(string)
	}
	if phases != "BBXEiE" {
		t.Errorf("phase sequence %q, want BBXEiE", phases)
	}
	// The hop's span-scoped counters ride on its E event.
	if got := events[3]["args"].(map[string]any)["counts"].(map[string]any)["probes_sent"]; got != float64(4) {
		t.Errorf("hop E counts probes_sent = %v, want 4", got)
	}
}

func TestTracerDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := driveTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := driveTrace(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("two identical trace runs rendered differently")
	}
}

func TestTracerEmptyClose(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(b.String()), &events); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%q", err, b.String())
	}
	if len(events) != 0 {
		t.Errorf("empty trace holds %d events", len(events))
	}
	// Events after Close are discarded, not errors.
	tr.Instant(1, "late")
	if tr.Events() != 0 || tr.Err() != nil {
		t.Error("post-Close event was recorded")
	}
}

func TestSpanGet(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)
	sp := tr.Start(0, "phase")
	sp.Count("sent", 7)
	sp.Count("sent", 2)
	if got := sp.Get("sent"); got != 9 {
		t.Errorf("Get(sent) = %d, want 9", got)
	}
	if got := sp.Get("missing"); got != 0 {
		t.Errorf("Get(missing) = %d, want 0", got)
	}
}
