package telemetry

import (
	"io"
	"testing"
)

// The registry and recorder sit on the probe hot path when telemetry is
// enabled; these benchmarks bound their per-event cost. BenchmarkNilOverhead
// measures the disabled path — the nil-guarded calls an instrumented site
// pays when no telemetry is attached — which scripts/bench.sh tracks against
// the probe-exchange cost to keep the "<5% when disabled" budget honest.

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("tracenet_bench_total")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkCounterAddParallel(b *testing.B) {
	c := NewRegistry().Counter("tracenet_bench_total")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Add(1)
		}
	})
}

func BenchmarkCounterResolve(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("tracenet_bench_total", "proto", "icmp").Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("tracenet_bench_hist", []uint64{1, 2, 4, 8, 16, 32, 64})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i & 127))
	}
}

func BenchmarkRecorderRecord(b *testing.B) {
	f := NewFlightRecorder(DefaultFlightRecorderSize)
	ev := Event{Ticks: 7, Kind: "probe", Msg: "icmp 10.0.5.2 ttl=3 -> ttl-exceeded from 10.0.2.1"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Record(ev)
	}
}

func BenchmarkTracerComplete(b *testing.B) {
	tr := NewTracer(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Complete(uint64(i), uint64(i+2), "probe", "dst", "10.0.5.2")
	}
}

// BenchmarkNilOverhead measures one disabled-telemetry instrumentation site:
// a nil-handle counter bump plus a nil-telemetry record call.
func BenchmarkNilOverhead(b *testing.B) {
	var c *Counter
	var tel *Telemetry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
		tel.Record("probe", "")
	}
}
