package core

import (
	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
)

// position is the outcome of subnet positioning (paper §3.4, Algorithm 2):
// the pivot interface the subnet will be grown around, its direct hop
// distance, the ingress interface, and whether the subnet lies on the trace
// path.
type position struct {
	ok        bool
	pivot     ipv4.Addr
	pivotDist int
	ingress   ipv4.Addr
	onPath    bool
}

// findPosition runs Algorithm 2 for the interface v obtained at hop d in
// trace-collection mode, with u the interface obtained at hop d-1 (Zero if
// anonymous).
func findPosition(pr *probe.Prober, u, v ipv4.Addr, d int, cfg Config) (position, error) {
	var pos position

	// Line 1: perceived direct distance to v.
	vh, err := directDistance(pr, v, d, cfg.MaxTTL)
	if err != nil {
		return pos, err
	}
	if vh < 0 {
		// v answers indirect probes only; the subnet cannot be positioned.
		return pos, nil
	}

	// Lines 2–10: on/off-trace-path decision. The subnet is on the trace
	// path iff the perceived distance matches the trace hop and the hop
	// before v on the direct path is u.
	if vh == d {
		if vh == 1 {
			// First hop: the subnet is the vantage LAN, trivially on-path.
			pos.onPath = true
		} else {
			r, err := pr.Probe(v, vh-1)
			if err != nil {
				return pos, err
			}
			switch {
			case r.Expired() && r.From == u:
				pos.onPath = true
			case r.Silent() && u.IsZero():
				// Both the trace hop and the direct-path predecessor are
				// anonymous: indistinguishable, assume on-path.
				pos.onPath = true
			}
		}
	}

	// Lines 11–21: pivot designation. If the /31 mate of v is farther than v
	// (a probe to it at TTL vh expires), then v is the near-side interface
	// of its link and the true pivot — the farthest interface of the subnet
	// (§3.4) — is its mate, one hop beyond.
	pos.pivot, pos.pivotDist = v, vh
	if mate, ok, err := farSideMate(pr, v, vh); err != nil {
		return pos, err
	} else if ok {
		pos.pivot, pos.pivotDist = mate, vh+1
	}

	// Line 22: ingress interface — the router one hop before the pivot.
	if pos.pivotDist > 1 {
		r, err := pr.Probe(pos.pivot, pos.pivotDist-1)
		if err != nil {
			return pos, err
		}
		if r.Expired() {
			pos.ingress = r.From
		}
	}
	pos.ok = true
	return pos, nil
}

// farSideMate implements Algorithm 2 lines 11–16: it reports whether the /31
// (or, failing that, /30) mate of v lies one hop beyond v, in which case the
// alive mate is the pivot. Returns (mate, true) when the pivot moves.
func farSideMate(pr *probe.Prober, v ipv4.Addr, vh int) (ipv4.Addr, bool, error) {
	for _, mate := range []ipv4.Addr{v.Mate31(), v.Mate30()} {
		r, err := pr.Probe(mate, vh)
		if err != nil {
			return ipv4.Zero, false, err
		}
		if r.Expired() {
			// The mate is beyond v. Use it as pivot if it is in use.
			alive, err := pr.Direct(mate)
			if err != nil {
				return ipv4.Zero, false, err
			}
			if alive.Alive() {
				return mate, true, nil
			}
			// Paper: "else if mate30(v) is in use" — fall through to the
			// /30 mate on the next iteration.
			continue
		}
		if !r.Silent() {
			// The mate answered at vh (echo reply): it is not beyond v, so v
			// itself is the farthest interface and stays pivot.
			return ipv4.Zero, false, nil
		}
		// Silence: "similar argument applies to /30 mate in case probing /31
		// does not yield any response" — try the next mate.
	}
	return ipv4.Zero, false, nil
}

// directDistance measures the perceived direct distance to addr (the dst()
// function of Algorithm 2): the smallest TTL at which a direct probe draws an
// alive response. The search starts from the hint hop d and walks down while
// the probe still succeeds, or up while it still expires. Returns -1 when
// addr never answers directly.
func directDistance(pr *probe.Prober, addr ipv4.Addr, d, maxTTL int) (int, error) {
	if d < 1 {
		d = 1
	}
	r, err := pr.Probe(addr, d)
	if err != nil {
		return 0, err
	}
	switch {
	case r.Alive():
		// Walk down: the distance is the last TTL that still succeeds.
		for ttl := d - 1; ttl >= 1; ttl-- {
			r2, err := pr.Probe(addr, ttl)
			if err != nil {
				return 0, err
			}
			if !r2.Alive() {
				return ttl + 1, nil
			}
		}
		return 1, nil
	case r.Expired():
		// Walk up until the probe reaches addr.
		for ttl := d + 1; ttl <= maxTTL; ttl++ {
			r2, err := pr.Probe(addr, ttl)
			if err != nil {
				return 0, err
			}
			if r2.Alive() {
				return ttl, nil
			}
			if !r2.Expired() {
				return -1, nil
			}
		}
		return -1, nil
	default:
		return -1, nil
	}
}
