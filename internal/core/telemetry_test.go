package core

import (
	"encoding/json"
	"strings"
	"testing"

	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
	"tracenet/internal/topo"
)

// telemetrySession builds a figure-3 session with the full observability
// pipeline: the network is the clock, the tracer writes into trace.
func telemetrySession(t *testing.T) (*Session, *telemetry.Telemetry, *strings.Builder) {
	t.Helper()
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(n)
	tel.Recorder = telemetry.NewFlightRecorder(telemetry.DefaultFlightRecorderSize)
	var trace strings.Builder
	tel.Tracer = telemetry.NewTracer(&trace)
	n.SetTelemetry(tel)
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, Telemetry: tel})
	return NewSession(pr, Config{}), tel, &trace
}

func TestSessionTelemetry(t *testing.T) {
	s, tel, trace := telemetrySession(t)
	res, err := s.Trace(addr("10.0.5.2"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("not reached:\n%v", res)
	}

	if got := tel.Counter("tracenet_session_traces_total").Value(); got != 1 {
		t.Errorf("traces counter = %d, want 1", got)
	}
	if got := tel.Counter("tracenet_session_hops_total").Value(); got != uint64(len(res.Hops)) {
		t.Errorf("hops counter = %d, want %d", got, len(res.Hops))
	}
	if got := tel.Counter("tracenet_session_subnets_total").Value(); got != uint64(len(s.Subnets())) {
		t.Errorf("subnets counter = %d, want %d", got, len(s.Subnets()))
	}
	// Per-phase probe counters must reproduce the Result's accounting, which
	// is itself derived from the same Scope deltas.
	for _, tc := range []struct {
		phase string
		want  uint64
	}{
		{"trace", res.TraceProbes},
		{"position", res.PositionProbes},
		{"explore", res.ExploreProbes},
	} {
		if got := tel.Counter("tracenet_session_probes_total", "phase", tc.phase).Value(); got != tc.want {
			t.Errorf("phase %q probes = %d, want %d", tc.phase, got, tc.want)
		}
	}
	if got := tel.Histogram("tracenet_session_subnet_prefix_bits", SubnetPrefixBuckets).Count(); got != uint64(len(s.Subnets())) {
		t.Errorf("prefix-bits observations = %d, want %d", got, len(s.Subnets()))
	}

	// The trace must close into valid JSON holding the full span hierarchy.
	if err := tel.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal([]byte(trace.String()), &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range events {
		seen[ev["name"].(string)] = true
	}
	for _, want := range []string{"trace", "hop", "position", "explore", "probe"} {
		if !seen[want] {
			t.Errorf("trace lacks %q spans; saw %v", want, seen)
		}
	}
	// The trace span's scoped counters carry the probe accounting.
	if !strings.Contains(trace.String(), `"counts":{`) {
		t.Error("no span-scoped counts in trace output")
	}
}

func TestSessionDegradedSubnetRaisesIncident(t *testing.T) {
	n := netsim.New(topo.Figure3(), netsim.Config{})
	if err := n.InstallFaults(netsim.FaultPlan{Seed: 3, Faults: []netsim.Fault{
		{Kind: netsim.FaultCorrupt, Prob: 0.5},
	}}); err != nil {
		t.Fatal(err)
	}
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	tel := telemetry.New(n)
	tel.Recorder = telemetry.NewFlightRecorder(telemetry.DefaultFlightRecorderSize)
	var dump strings.Builder
	tel.SetIncidentWriter(&dump)
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true, Telemetry: tel})
	s := NewSession(pr, Config{})
	if _, err := s.Trace(addr("10.0.5.2")); err != nil {
		t.Fatal(err)
	}
	if len(s.DegradedSubnets()) == 0 {
		t.Skip("seed produced no degraded subnet; incident path covered elsewhere")
	}
	if got := tel.Counter("tracenet_session_degraded_subnets_total").Value(); got != uint64(len(s.DegradedSubnets())) {
		t.Errorf("degraded counter = %d, want %d", got, len(s.DegradedSubnets()))
	}
	if !strings.Contains(dump.String(), "subnet-degraded") {
		t.Errorf("no subnet-degraded flight-recorder dump:\n%s", dump.String())
	}
}

func TestOrderedStopCounts(t *testing.T) {
	stats := map[StopReason]int{
		StopMinPrefix:     2,
		StopH3:            1,
		StopReason("H99"): 4, // unknown (e.g. future collector's checkpoint)
		StopReason("H10"): 3,
		StopNone:          9, // still growing: never rendered
		StopH2:            0, // zero: dropped
	}
	got := OrderedStopCounts(stats)
	want := []StopCount{
		{StopH3, 1}, {StopMinPrefix, 2}, {StopReason("H10"), 3}, {StopReason("H99"), 4},
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStopStatsOrderedMatchesMap(t *testing.T) {
	s, _, _ := telemetrySession(t)
	if _, err := s.Trace(addr("10.0.5.2")); err != nil {
		t.Fatal(err)
	}
	stats := s.StopStats()
	total := 0
	for _, sc := range s.StopStatsOrdered() {
		if stats[sc.Reason] != sc.Count {
			t.Errorf("ordered count for %q = %d, map says %d", sc.Reason, sc.Count, stats[sc.Reason])
		}
		total += sc.Count
	}
	if want := len(s.Subnets()); total != want {
		t.Errorf("ordered counts total %d, want %d subnets", total, want)
	}
}

func TestCheckpointRestoreTelemetry(t *testing.T) {
	// Collect with one instrumented session, resume into another.
	s, _, _ := telemetrySession(t)
	if _, err := s.Trace(addr("10.0.5.2")); err != nil {
		t.Fatal(err)
	}
	cp := s.Checkpoint()

	s2, tel2, trace2 := telemetrySession(t)
	restored, err := NewSessionFromCheckpoint(s2.Prober(), Config{}, cp)
	if err != nil {
		t.Fatal(err)
	}
	if got := tel2.Counter("tracenet_session_restored_subnets_total").Value(); got != uint64(len(cp.Subnets)) {
		t.Errorf("restored counter = %d, want %d", got, len(cp.Subnets))
	}
	if len(restored.Subnets()) != len(cp.Subnets) {
		t.Fatalf("restored %d subnets, want %d", len(restored.Subnets()), len(cp.Subnets))
	}
	if err := tel2.Tracer.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(trace2.String(), `"name":"resume"`) {
		t.Errorf("no resume instant in trace:\n%s", trace2.String())
	}
}
