package core

import (
	"fmt"

	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
)

// Adversarial defenses (DESIGN.md §11), enabled by Config.Defend.
//
// The paper's collector trusts every reply: the source address of a
// time-exceeded names the hop, and an alive outcome at the pivot distance
// admits a candidate to the subnet. A byzantine responder (internal/netsim's
// liar / alias-confuse / hidden-hop / echo faults) exploits exactly that
// trust to make the collector infer structure that does not exist. The
// defenses below buy back precision with extra probes:
//
//   - cross-validation: suspicious observations are re-probed through
//     probe.ProbeUncached — a lying responder's first answer never vouches
//     for itself — and subnet members are validated from a second TTL
//     position (PivotDist+1) before the subnet is published;
//   - quarantine: an address whose responses are internally inconsistent
//     (the same probing context answered from different sources, or a
//     member contradicted by a definite non-alive outcome) is quarantined —
//     stripped from collected subnets and never re-admitted as a member;
//   - demotion: outcomes that are merely unconfirmed (silence on
//     re-validation, which honest rate limiting also produces) strip the
//     member but only demote the subnet's Confidence, without quarantining
//     the address.

// defenseValidations is how many independent re-probes defendSubnet spends
// per non-pivot member. A fabricated "alive" holds across k draws only with
// the fault's per-reply probability to the k-th power, while a genuine
// member on a lossless path answers every time.
const defenseValidations = 2

// isQuarantined reports whether a has been quarantined this session.
func (s *Session) isQuarantined(a ipv4.Addr) bool {
	_, ok := s.quarantined[a]
	return ok
}

// Quarantined returns the quarantined addresses, ascending.
func (s *Session) Quarantined() []ipv4.Addr {
	out := make([]ipv4.Addr, 0, len(s.quarantined))
	for a := range s.quarantined {
		out = append(out, a)
	}
	sortAddrs(out)
	return out
}

// QuarantineReason returns why addr was quarantined ("" when it was not).
func (s *Session) QuarantineReason(a ipv4.Addr) string { return s.quarantined[a] }

// quarantineAddr quarantines a: records the reason, strips a from every
// subnet collected so far, and bars it from future membership (explore skips
// quarantined candidates, exploreHop skips quarantined pivots).
func (s *Session) quarantineAddr(a ipv4.Addr, reason string) {
	if a.IsZero() || s.isQuarantined(a) {
		return
	}
	s.quarantined[a] = reason
	s.cQuarantined.Inc()
	if s.tel != nil {
		s.tel.Record("defense", fmt.Sprintf("quarantine %v: %s", a, reason))
	}
	delete(s.collected, a)
	if s.cfg.Shared != nil {
		// Campaign subnets are shared pointers across concurrently running
		// sessions; stripping them here would race and break the campaign's
		// schedule-independence. Quarantine still bars future use.
		return
	}
	for _, sub := range s.subnets {
		stripMember(sub, a)
	}
}

// stripMember removes a from sub's membership, degrading the subnet; it
// reports whether a was a member.
func stripMember(sub *Subnet, a ipv4.Addr) bool {
	idx := -1
	for i, m := range sub.Addrs {
		if m == a {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	sub.Addrs = append(sub.Addrs[:idx], sub.Addrs[idx+1:]...)
	if sub.ContraPivot == a {
		sub.ContraPivot = ipv4.Zero
	}
	sub.Degraded = true
	return true
}

// defendHop cross-validates one trace-collection outcome before the session
// acts on it, returning the (possibly corrected) result and whether the hop
// was flagged as suspicious.
func (s *Session) defendHop(dst ipv4.Addr, d int, r probe.Result) (probe.Result, bool) {
	switch {
	case r.Alive():
		// FaultEcho symptom: a fabricated "alive" at a TTL the genuine
		// destination cannot answer from truncates the trace early. A
		// genuine alive outcome reproduces on an uncached re-probe; the
		// fabricated one holds only with the fault's per-reply probability.
		s.cCrossChecks.Inc()
		r2, err := s.pr.ProbeUncached(dst, d)
		if err != nil || r2.Alive() {
			return r, false
		}
		return r2, true
	case r.Expired():
		if s.isQuarantined(r.From) {
			// A known liar answered: keep the hop anonymous.
			return probe.Result{}, true
		}
		// FaultLiar symptom: the same (dst, TTL) context answered from two
		// different sources. Neither can be trusted to name the hop, and
		// neither may seed a subnet exploration — quarantine both. Honest
		// per-flow paths answer a repeated probe from the same interface.
		s.cCrossChecks.Inc()
		r2, err := s.pr.ProbeUncached(dst, d)
		if err == nil && r2.Expired() &&
			!r.From.IsZero() && !r2.From.IsZero() && r2.From != r.From {
			s.quarantineAddr(r.From, fmt.Sprintf(
				"inconsistent source at (dst %v, ttl %d): also saw %v", dst, d, r2.From))
			s.quarantineAddr(r2.From, fmt.Sprintf(
				"inconsistent source at (dst %v, ttl %d): also saw %v", dst, d, r.From))
			return probe.Result{}, true
		}
	}
	return r, false
}

// defendSubnet cross-validates a freshly grown subnet's membership from a
// second TTL position before the subnet is published. Every genuine member
// sits at hop distance PivotDist or PivotDist-1, so a direct probe at
// PivotDist+1 must find it alive; an address minted by a fabricated reply
// fails that re-validation unless the fault lies defenseValidations times in
// a row. Definite contradictions (TTL expiry, host-unreachable) quarantine
// the address; silence merely strips it and demotes the subnet's Confidence,
// because honest rate limiting produces silence too.
func (s *Session) defendSubnet(sub *Subnet) error {
	ttl := sub.PivotDist + 1
	if ttl < 2 || ttl > 255 {
		return nil
	}
	var confirmed, contradicted, unconfirmed int
	keep := make([]ipv4.Addr, 0, len(sub.Addrs))
	for _, a := range sub.Addrs {
		if a == sub.Pivot {
			// Positioning already pinned the pivot from two TTL positions.
			keep = append(keep, a)
			continue
		}
		alive, definiteNo := true, false
		for i := 0; i < defenseValidations && alive && !definiteNo; i++ {
			s.cCrossChecks.Inc()
			r, err := s.pr.ProbeUncached(a, ttl)
			if err != nil {
				if !recoverable(err) {
					return err
				}
				alive = false
				break
			}
			switch {
			case r.Alive():
			case r.Expired() || r.Kind == probe.HostUnreachable:
				definiteNo = true
			default:
				alive = false
			}
		}
		switch {
		case definiteNo:
			contradicted++
			s.quarantineAddr(a, fmt.Sprintf(
				"member of %v contradicted at ttl %d", sub.Prefix, ttl))
		case alive:
			confirmed++
			keep = append(keep, a)
		default:
			unconfirmed++
		}
	}
	if contradicted == 0 && unconfirmed == 0 {
		return nil
	}
	sub.Addrs = keep
	if !sub.ContraPivot.IsZero() && !sub.Contains(sub.ContraPivot) {
		sub.ContraPivot = ipv4.Zero
	}
	// Re-derive the covering prefix of the surviving members: growth that
	// only phantom members justified must not survive in the prefix either.
	bits := 32
	for _, a := range sub.Addrs {
		if l := ipv4.CommonPrefixLen(sub.Pivot, a); l < bits {
			bits = l
		}
	}
	if len(sub.Addrs) <= 1 {
		bits = 32
	}
	if bits > sub.Prefix.Bits() {
		sub.Prefix = ipv4.NewPrefix(sub.Pivot, bits)
	}
	sub.Degraded = true
	checked := confirmed + contradicted + unconfirmed
	if checked > 0 {
		sub.Confidence *= float64(confirmed) / float64(checked)
		s.cDemotions.Inc()
	}
	return nil
}
