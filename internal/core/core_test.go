package core

import (
	"strings"
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
	"tracenet/internal/wire"
)

func addr(s string) ipv4.Addr  { return ipv4.MustParseAddr(s) }
func pfx(s string) ipv4.Prefix { return ipv4.MustParsePrefix(s) }

func prober(t *testing.T, topol *netsim.Topology, cfg netsim.Config, opts probe.Options) *probe.Prober {
	t.Helper()
	n := netsim.New(topol, cfg)
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = true
	return probe.New(port, port.LocalAddr(), opts)
}

// subnetByPrefix finds a collected subnet with the given prefix.
func subnetByPrefix(res *Result, p ipv4.Prefix) *Subnet {
	for _, s := range res.Subnets {
		if s.Prefix == p {
			return s
		}
	}
	return nil
}

func TestTraceFigure3(t *testing.T) {
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	res, err := Trace(pr, addr("10.0.5.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("not reached:\n%v", res)
	}
	if len(res.Hops) != 4 {
		t.Fatalf("hops = %d, want 4:\n%v", len(res.Hops), res)
	}

	// Hop 1: the vantage access /30, collected exactly.
	access := subnetByPrefix(res, pfx("10.0.0.0/30"))
	if access == nil {
		t.Fatalf("vantage access /30 not collected:\n%v", res)
	}
	if len(access.Addrs) != 2 {
		t.Fatalf("access subnet members = %v", access.Addrs)
	}

	// Hop 2: the R1–R2 /31, collected exactly with both endpoints.
	link := subnetByPrefix(res, pfx("10.0.1.0/31"))
	if link == nil {
		t.Fatalf("R1-R2 /31 not collected:\n%v", res)
	}
	if !link.Contains(addr("10.0.1.0")) || !link.Contains(addr("10.0.1.1")) {
		t.Fatalf("/31 members = %v", link.Addrs)
	}
	if !link.OnPath {
		t.Error("R1-R2 link must be on-trace-path")
	}
	if !link.PointToPoint() {
		t.Error("/31 must classify as point-to-point")
	}

	// Hop 3: the multi-access subnet S. Only 4 of 254 addresses are
	// utilized, so the half-fill rule stops growth and the subnet comes out
	// underestimated as the covering /29 — with all four members and the
	// contra-pivot identified (paper §4.1.1 explains this class).
	s := subnetByPrefix(res, pfx("10.0.2.0/29"))
	if s == nil {
		t.Fatalf("multi-access subnet not collected:\n%v", res)
	}
	for _, want := range []string{"10.0.2.1", "10.0.2.2", "10.0.2.3", "10.0.2.4"} {
		if !s.Contains(addr(want)) {
			t.Errorf("S misses %s: %v", want, s.Addrs)
		}
	}
	if s.ContraPivot != addr("10.0.2.1") {
		t.Errorf("contra-pivot = %v, want 10.0.2.1", s.ContraPivot)
	}
	if s.Stop != StopHalfFill {
		t.Errorf("stop reason = %v, want half-fill", s.Stop)
	}
	if s.PointToPoint() {
		t.Error("multi-access subnet classified as point-to-point")
	}

	// Fringe interfaces must never leak into S.
	for _, fringe := range []string{"10.0.3.0", "10.0.3.1", "10.0.4.0", "10.0.4.1", "10.0.1.1"} {
		if s.Contains(addr(fringe)) {
			t.Errorf("fringe interface %s leaked into S: %v", fringe, s.Addrs)
		}
	}

	// Hop 4: the destination /30.
	ds := subnetByPrefix(res, pfx("10.0.5.0/30"))
	if ds == nil {
		t.Fatalf("destination /30 not collected:\n%v", res)
	}
	if !ds.Contains(addr("10.0.5.1")) || !ds.Contains(addr("10.0.5.2")) {
		t.Fatalf("destination subnet members = %v", ds.Addrs)
	}

	// tracenet's headline claim: many more addresses than traceroute's four.
	if got := res.AddrCount(); got < 10 {
		t.Errorf("address count = %d, want >= 10 (traceroute finds 4)", got)
	}
}

func TestTraceChainExactP2P(t *testing.T) {
	pr := prober(t, topo.Chain(5), netsim.Config{}, probe.Options{})
	res, err := Trace(pr, addr("10.9.255.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("not reached")
	}
	// All four /31 backbone links must be collected exactly.
	for i := 2; i <= 5; i++ {
		base := addr("10.9.1.0") + ipv4.Addr((i-2)*2)
		p := ipv4.NewPrefix(base, 31)
		s := subnetByPrefix(res, p)
		if s == nil {
			t.Fatalf("link %v not collected:\n%v", p, res)
		}
		if len(s.Addrs) != 2 {
			t.Fatalf("link %v members = %v", p, s.Addrs)
		}
	}
}

func TestSessionReusesKnownSubnets(t *testing.T) {
	top := topo.Figure3()
	n := netsim.New(top, netsim.Config{})
	port, _ := n.PortFor("vantage")
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := NewSession(pr, Config{})

	if _, err := sess.Trace(addr("10.0.5.2")); err != nil {
		t.Fatal(err)
	}
	probesAfterFirst := pr.Stats().Sent

	// Tracing the far-fringe router reuses every subnet on the shared path
	// prefix; only genuinely new ground costs packets.
	res2, err := sess.Trace(addr("10.0.4.1"))
	if err != nil {
		t.Fatal(err)
	}
	reused := 0
	for _, h := range res2.Hops {
		if h.Revisited {
			reused++
		}
	}
	if reused < 2 {
		t.Fatalf("second trace revisited %d hops, want >= 2:\n%v", reused, res2)
	}
	secondCost := pr.Stats().Sent - probesAfterFirst
	if secondCost > probesAfterFirst {
		t.Fatalf("second trace cost %d > first trace %d despite reuse", secondCost, probesAfterFirst)
	}
}

func TestDisableSkipKnownReexplores(t *testing.T) {
	top := topo.Figure3()
	n := netsim.New(top, netsim.Config{})
	port, _ := n.PortFor("vantage")
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := NewSession(pr, Config{DisableSkipKnown: true})
	if _, err := sess.Trace(addr("10.0.5.2")); err != nil {
		t.Fatal(err)
	}
	res2, err := sess.Trace(addr("10.0.4.1"))
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res2.Hops {
		if h.Revisited {
			t.Fatalf("revisited hop with SkipKnown disabled:\n%v", res2)
		}
	}
}

func TestAnonymousHopNoSubnet(t *testing.T) {
	top := topo.Figure3()
	for _, r := range top.Routers {
		if r.Name == "R2" {
			r.IndirectPolicy = netsim.PolicyNil
		}
	}
	pr := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	res, err := Trace(pr, addr("10.0.5.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("not reached")
	}
	if !res.Hops[1].Anonymous() || res.Hops[1].Subnet != nil {
		t.Fatalf("anonymous hop mishandled: %+v", res.Hops[1])
	}
	// The hop after the anonymous router must still be explored (H6 treats
	// the anonymous u as a wildcard).
	if res.Hops[2].Subnet == nil {
		t.Fatalf("hop after anonymous router lost its subnet:\n%v", res)
	}
}

func TestUnpositionableHop(t *testing.T) {
	top := topo.Figure3()
	// R2 answers indirect probes but never direct ones: v cannot be
	// positioned, the hop is recorded bare.
	for _, r := range top.Routers {
		if r.Name == "R2" {
			r.DirectPolicy = netsim.PolicyNil
		}
	}
	pr := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	res, err := Trace(pr, addr("10.0.5.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hops[1].Addr != addr("10.0.1.1") {
		t.Fatalf("hop 2 = %v", res.Hops[1].Addr)
	}
	if res.Hops[1].Subnet != nil {
		t.Fatal("unpositionable hop grew a subnet")
	}
}

func TestUnroutableDestinationGivesUp(t *testing.T) {
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{NoRetry: true})
	res, err := Trace(pr, addr("172.16.0.1"), Config{MaxConsecutiveGaps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Fatal("unroutable destination reported reached")
	}
	if len(res.Hops) > 6 {
		t.Fatalf("did not give up: %d hops", len(res.Hops))
	}
}

func TestBudgetErrorPropagates(t *testing.T) {
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{Budget: 5, NoRetry: true})
	if _, err := Trace(pr, addr("10.0.5.2"), Config{}); err == nil {
		t.Fatal("budget exhaustion must surface as an error")
	}
}

func TestProbeAccounting(t *testing.T) {
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	res, err := Trace(pr, addr("10.0.5.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TraceProbes == 0 || res.PositionProbes == 0 || res.ExploreProbes == 0 {
		t.Fatalf("phase accounting empty: %+v", res)
	}
	if res.TotalProbes() != res.TraceProbes+res.PositionProbes+res.ExploreProbes {
		t.Fatal("TotalProbes inconsistent")
	}
	if res.TotalProbes() != pr.Stats().Sent {
		t.Fatalf("accounted %d != sent %d", res.TotalProbes(), pr.Stats().Sent)
	}
}

// loopTransport always answers TTL-scoped probes with a time-exceeded from
// one fixed address — the signature of a forwarding loop.
type loopTransport struct {
	src, router ipv4.Addr
}

func (l loopTransport) Exchange(raw []byte) ([]byte, error) {
	req, err := wire.Decode(raw)
	if err != nil {
		return nil, err
	}
	rep := wire.NewICMPError(l.router, wire.ICMPTimeExceeded, wire.CodeTTLExceeded, raw)
	_ = req
	out, err := rep.Encode()
	return out, err
}

func TestRoutingLoopGuard(t *testing.T) {
	src := addr("10.0.0.1")
	router := addr("10.0.9.9")
	pr := probe.New(loopTransport{src: src, router: router}, src, probe.Options{NoRetry: true})
	res, err := Trace(pr, addr("10.0.5.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Fatal("looping path reported reached")
	}
	// The session must stop as soon as the same interface answers a second
	// trace-collection probe, not run to MaxTTL.
	if len(res.Hops) > 3 {
		t.Fatalf("loop guard did not fire: %d hops", len(res.Hops))
	}
}

func TestSessionAccessors(t *testing.T) {
	top := topo.Figure3()
	n := netsim.New(top, netsim.Config{})
	port, _ := n.PortFor("vantage")
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := NewSession(pr, Config{})
	if sess.Prober() != pr {
		t.Fatal("Prober accessor broken")
	}
	if _, err := sess.Trace(addr("10.0.5.2")); err != nil {
		t.Fatal(err)
	}
	stats := sess.StopStats()
	total := 0
	for reason, n := range stats {
		if reason == StopNone {
			t.Errorf("unterminated growth: %d", n)
		}
		total += n
	}
	if total != len(sess.Subnets()) {
		t.Fatalf("stop stats cover %d of %d subnets", total, len(sess.Subnets()))
	}
}

func TestResultStringRendering(t *testing.T) {
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	res, err := Trace(pr, addr("10.0.5.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	for _, want := range []string{"tracenet to 10.0.5.2", "reached=true", "subnet 10.0.2.0/29", "probes="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering lacks %q:\n%s", want, out)
		}
	}
	// Anonymous hop rendering.
	top := topo.Figure3()
	for _, r := range top.Routers {
		if r.Name == "R2" {
			r.IndirectPolicy = netsim.PolicyNil
		}
	}
	pr2 := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	res2, err := Trace(pr2, addr("10.0.5.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res2.String(), "*") {
		t.Error("anonymous hop not rendered")
	}
	// Revisited marker.
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, _ := n.PortFor("vantage")
	pr3 := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := NewSession(pr3, Config{})
	if _, err := sess.Trace(addr("10.0.5.2")); err != nil {
		t.Fatal(err)
	}
	res3, err := sess.Trace(addr("10.0.4.1"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res3.String(), "revisited") {
		t.Errorf("revisited marker missing:\n%v", res3)
	}
}

func TestSubnetStringAnnotations(t *testing.T) {
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	res, err := Trace(pr, addr("10.0.5.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	s := subnetByPrefix(res, pfx("10.0.2.0/29"))
	out := s.String()
	for _, want := range []string{"(pivot)", "(contra)", "at hop 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("subnet rendering lacks %q: %s", want, out)
		}
	}
}

func TestFarSideMateFallsBackToMate30(t *testing.T) {
	// A /30 link where the router reports the NEAR side: the /31 mate of the
	// near address is the unused .0/.3 pair, so positioning must fall back
	// to the /30 mate to find the far-side pivot.
	b := netsim.NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	r3 := b.Router("R3")
	r7 := b.Router("R7")
	d := b.Host("dest")
	a := b.Subnet("10.4.0.0/30")
	b.Attach(v, a, "10.4.0.1")
	b.Attach(r1, a, "10.4.0.2")
	up := b.Subnet("10.4.1.0/31")
	b.Attach(r1, up, "10.4.1.0")
	b.Attach(r3, up, "10.4.1.1")
	sn := b.Subnet("10.4.2.0/30") // /30 side subnet: near .1 (R3), far .2 (R7)
	snIface := b.Attach(r3, sn, "10.4.2.1")
	b.Attach(r7, sn, "10.4.2.2")
	ds := b.Subnet("10.4.3.0/30")
	b.Attach(r3, ds, "10.4.3.1")
	b.Attach(d, ds, "10.4.3.2")
	r3.IndirectPolicy = netsim.PolicyDefault
	r3.DefaultIface = snIface
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := prober(t, top, netsim.Config{}, probe.Options{})
	res, err := Trace(pr, addr("10.4.3.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sn2 *Subnet
	for _, s := range res.Subnets {
		if s.Prefix.Contains(addr("10.4.2.1")) {
			sn2 = s
		}
	}
	if sn2 == nil {
		t.Fatalf("side /30 not collected:\n%v", res)
	}
	if sn2.Pivot != addr("10.4.2.2") || sn2.PivotDist != 3 {
		t.Errorf("pivot = %v at %d, want the /30 mate 10.4.2.2 at 3", sn2.Pivot, sn2.PivotDist)
	}
	if sn2.Prefix != pfx("10.4.2.0/30") {
		t.Errorf("prefix = %v, want 10.4.2.0/30", sn2.Prefix)
	}
}

func TestDirectDistanceHintClamp(t *testing.T) {
	// Hint below 1 is clamped rather than rejected.
	pr := prober(t, topo.Chain(3), netsim.Config{}, probe.Options{})
	got, err := directDistance(pr, addr("10.9.0.2"), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("distance = %d, want 1", got)
	}
}

func TestExplorationAtTopOfAddressSpace(t *testing.T) {
	// A subnet at the very top of the IPv4 space: exploration's growth
	// arithmetic must not wrap past 255.255.255.255.
	b := netsim.NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	r2 := b.Router("R2")
	d := b.Host("dest")
	a := b.Subnet("10.0.0.0/30")
	b.Attach(v, a, "10.0.0.1")
	b.Attach(r1, a, "10.0.0.2")
	up := b.Subnet("255.255.255.240/31")
	b.Attach(r1, up, "255.255.255.240")
	b.Attach(r2, up, "255.255.255.241")
	ds := b.Subnet("255.255.255.252/30")
	b.Attach(r2, ds, "255.255.255.253")
	b.Attach(d, ds, "255.255.255.254")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := prober(t, top, netsim.Config{}, probe.Options{})
	res, err := Trace(pr, addr("255.255.255.254"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("not reached:\n%v", res)
	}
	s := subnetByPrefix(res, pfx("255.255.255.252/30"))
	if s == nil || len(s.Addrs) != 2 {
		t.Fatalf("top-of-space subnet = %+v\n%v", s, res)
	}
}

func TestHostUnreachableEndsTrace(t *testing.T) {
	top := topo.Figure3()
	for _, r := range top.Routers {
		r.EmitUnreachable = true
	}
	pr := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	// 10.0.2.200 is covered by S but unassigned: the ingress router reports
	// host-unreachable and the trace ends there.
	res, err := Trace(pr, addr("10.0.2.200"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached {
		t.Fatal("unassigned target reported reached")
	}
	last := res.Hops[len(res.Hops)-1]
	if last.Kind != probe.HostUnreachable {
		t.Fatalf("terminal hop kind = %v, want host-unreachable", last.Kind)
	}
	if len(res.Hops) > 4 {
		t.Fatalf("trace did not stop at the unreachable: %d hops", len(res.Hops))
	}
}

func TestMaxTTLTruncatesSession(t *testing.T) {
	pr := prober(t, topo.Chain(10), netsim.Config{}, probe.Options{})
	res, err := Trace(pr, addr("10.9.255.2"), Config{MaxTTL: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached || len(res.Hops) != 4 {
		t.Fatalf("maxTTL session: reached=%v hops=%d", res.Reached, len(res.Hops))
	}
	// The subnets of the visited hops are still collected.
	if len(res.Subnets) < 3 {
		t.Fatalf("subnets = %d", len(res.Subnets))
	}
}
