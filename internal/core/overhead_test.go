package core

import (
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// TestOverheadPointToPoint checks the §3.6 lower-bound regime: discovering an
// on-path point-to-point subnet costs a small constant number of probes
// (the paper's model says four; our accounting includes the distance search,
// so we allow a small constant).
func TestOverheadPointToPoint(t *testing.T) {
	pr := prober(t, topo.Chain(5), netsim.Config{}, probe.Options{NoRetry: true})
	res, err := Trace(pr, addr("10.9.255.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Subnets {
		if !s.PointToPoint() {
			continue
		}
		if s.Probes > 12 {
			t.Errorf("p2p subnet %v cost %d probes, want small constant", s.Prefix, s.Probes)
		}
	}
}

// TestOverheadMultiAccessLinear checks the §3.6 upper-bound regime: the probe
// cost of a multi-access subnet is linear in the number of member interfaces
// (the paper's worst case is 7|S|+7).
func TestOverheadMultiAccessLinear(t *testing.T) {
	// Build /27 LANs with k members for growing k and fit cost against k.
	costFor := func(k int) uint64 {
		b := netsim.NewBuilder()
		v := b.Host("vantage")
		r1 := b.Router("R1")
		r2 := b.Router("R2")
		a := b.Subnet("10.255.0.0/30")
		b.Attach(v, a, "10.255.0.1")
		b.Attach(r1, a, "10.255.0.2")
		up := b.Subnet("10.255.1.0/31")
		b.Attach(r1, up, "10.255.1.0")
		b.Attach(r2, up, "10.255.1.1")
		s := b.Subnet("10.7.0.0/27")
		b.Attach(r2, s, "10.7.0.1")
		var first *netsim.Router
		for i := 2; i <= k; i++ {
			m := b.Router("M" + itoa(i))
			b.AttachA(m, s, addr("10.7.0.0")+ipv4.Addr(i))
			if first == nil {
				first = m
			}
		}
		d := b.Host("dest")
		ds := b.Subnet("10.255.2.0/30")
		b.Attach(first, ds, "10.255.2.1")
		b.Attach(d, ds, "10.255.2.2")
		pr := prober(t, b.MustBuild(), netsim.Config{}, probe.Options{NoRetry: true})
		res, err := Trace(pr, addr("10.255.2.2"), Config{})
		if err != nil {
			t.Fatal(err)
		}
		for _, sub := range res.Subnets {
			if sub.Prefix.Contains(addr("10.7.0.2")) {
				return sub.Probes
			}
		}
		t.Fatalf("k=%d: subnet not collected", k)
		return 0
	}

	c10 := costFor(10)
	c20 := costFor(20)
	c30 := costFor(30)
	if c20 <= c10 || c30 <= c20 {
		t.Fatalf("cost not increasing with |S|: %d %d %d", c10, c20, c30)
	}
	// Upper bound: the paper's model is 7|S|+7 plus our constant positioning
	// and distance-search overhead; 8|S|+32 is a safe envelope.
	for _, c := range []struct {
		k    int
		cost uint64
	}{{10, c10}, {20, c20}, {30, c30}} {
		bound := uint64(8*c.k + 32)
		if c.cost > bound {
			t.Errorf("|S|=%d cost %d exceeds linear envelope %d", c.k, c.cost, bound)
		}
	}
}

// TestTopDownAblationCostsMore verifies the §3.8 claim motivating bottom-up
// growth: the top-down strawman pays the full assumed-subnet probing cost on
// small subnets.
func TestTopDownAblationCostsMore(t *testing.T) {
	run := func(cfg Config) uint64 {
		pr := prober(t, topo.Chain(4), netsim.Config{}, probe.Options{NoRetry: true})
		res, err := Trace(pr, addr("10.9.255.2"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalProbes()
	}
	bottomUp := run(Config{})
	topDown := run(Config{TopDown: true, MinPrefixBits: 26})
	if topDown <= 2*bottomUp {
		t.Fatalf("top-down (%d probes) should cost far more than bottom-up (%d)", topDown, bottomUp)
	}
}

// TestHalfFillAblation verifies that disabling Algorithm 1's lines 19–21
// lets sparse subnets keep growing until some heuristic fires, spending more
// probes than the guarded run.
func TestHalfFillAblation(t *testing.T) {
	run := func(cfg Config) uint64 {
		pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{NoRetry: true})
		res, err := Trace(pr, addr("10.0.5.2"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalProbes()
	}
	guarded := run(Config{})
	unguarded := run(Config{DisableHalfFillStop: true, MinPrefixBits: 24})
	if unguarded <= guarded {
		t.Fatalf("unguarded growth (%d probes) should exceed guarded (%d)", unguarded, guarded)
	}
}
