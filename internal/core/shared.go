package core

import "tracenet/internal/ipv4"

// Growth is the outcome of one subnet exploration at a hop context: the
// subnet grown around pivot v (nil when v was unpositionable) and the wire
// cost — position plus exploration packets — that the growth spent. On a
// clean network the whole Growth is a pure function of the hop context
// (v, u, d): the session clears its prober's response cache before an owned
// growth precisely so the cost cannot depend on what the session probed
// earlier. That purity is what lets a campaign share growths across workers
// without perturbing any observable output.
type Growth struct {
	// Subnet is the grown subnet, nil when positioning rejected the pivot.
	Subnet *Subnet
	// Cost is the number of packets the growth put on the wire.
	Cost uint64
}

// SharedSubnetCache lets sessions tracing different destinations share subnet
// explorations (the campaign layer's Doubletree-style stop logic): before
// exploring the subnet at a hop, the session offers the hop context to the
// cache, which either returns a previously grown Growth (hit) or runs the
// supplied grow function exactly once across all concurrent callers and
// memoizes its outcome.
//
// Contract:
//   - The context key is (v, u, d): pivot interface, previous-hop interface,
//     and hop distance. Two hops with equal contexts must grow identical
//     subnets on a deterministic network, so sharing them is lossless.
//   - grow is invoked at most once per distinct context, no matter how many
//     sessions race on it; other callers block until the owner finishes.
//   - A grow error is returned to the owner and every waiter but is never
//     memoized — the next encounter of the context retries.
//   - A successful Growth with a nil Subnet (unpositionable pivot) IS
//     memoized: re-probing a pivot that cannot be positioned wastes the same
//     packets every time.
//
// ExploreHop returns the growth, whether it was served from the cache
// (hit = true means grow did not run in this call), and the grow error.
type SharedSubnetCache interface {
	ExploreHop(v, u ipv4.Addr, d int, grow func() (Growth, error)) (Growth, bool, error)
}
