// Package core implements tracenet, the paper's contribution: an end-to-end
// topology collector that, at every hop of a path trace, grows the complete
// subnet accommodating the responding interface.
//
// A session alternates between two modes (paper §3.3):
//
//   - trace collection: like traceroute, an indirect probe at TTL d obtains
//     one interface address v of the router at hop d;
//   - subnet exploration: before moving to hop d+1, the subnet containing v
//     is located (subnet positioning, Algorithm 2) and grown from a /31
//     around the pivot interface to its largest authentic prefix
//     (Algorithm 1), guarded by heuristics H1–H9 (§3.5).
//
// The result is a sequence of subnets — with membership, observed prefix
// length, contra-pivot and ingress annotations — instead of a bare list of
// addresses.
package core

import (
	"fmt"
	"sort"
	"strings"

	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
)

// StopReason records which rule terminated subnet growth, for debugging and
// the ablation benchmarks.
type StopReason string

const (
	StopNone      StopReason = ""          // still growing (internal)
	StopH2        StopReason = "H2"        // upper-bound subnet contiguity
	StopH3        StopReason = "H3"        // second contra-pivot
	StopH4        StopReason = "H4"        // lower-bound subnet contiguity
	StopH6        StopReason = "H6"        // fixed entry points
	StopH7        StopReason = "H7"        // upper-bound router contiguity (far fringe)
	StopH8        StopReason = "H8"        // lower-bound router contiguity (close fringe)
	StopHalfFill  StopReason = "half-fill" // Algorithm 1 lines 19–21
	StopMinPrefix StopReason = "min-prefix"
)

// StopReasons is the canonical presentation order of the stop reasons:
// heuristics in paper order, then the growth-limit rules. Every consumer
// that renders a stop-reason histogram iterates this list (never the map),
// so reports and telemetry stay deterministically ordered.
var StopReasons = []StopReason{
	StopH2, StopH3, StopH4, StopH6, StopH7, StopH8, StopHalfFill, StopMinPrefix,
}

// StopCount pairs a stop reason with its occurrence count.
type StopCount struct {
	Reason StopReason
	Count  int
}

// OrderedStopCounts flattens a stop-reason histogram into deterministic
// order: the canonical StopReasons first, then any reasons outside the
// canonical set (e.g. from a checkpoint written by a newer collector) sorted
// by name. Zero-count and still-growing (StopNone) entries are dropped.
func OrderedStopCounts(stats map[StopReason]int) []StopCount {
	var out []StopCount
	known := map[StopReason]bool{StopNone: true}
	for _, r := range StopReasons {
		known[r] = true
		if c := stats[r]; c > 0 {
			out = append(out, StopCount{r, c})
		}
	}
	var rest []StopReason
	for r := range stats {
		if !known[r] && stats[r] > 0 {
			rest = append(rest, r)
		}
	}
	sort.Slice(rest, func(i, j int) bool { return rest[i] < rest[j] })
	for _, r := range rest {
		out = append(out, StopCount{r, stats[r]})
	}
	return out
}

// Subnet is one collected ("observed") subnet.
type Subnet struct {
	// Prefix is the observed subnet prefix after growth and H9 reduction.
	Prefix ipv4.Prefix
	// Addrs are the member interface addresses, ascending; they include the
	// pivot and, when present, the contra-pivot.
	Addrs []ipv4.Addr
	// Pivot is the interface the subnet was grown around; PivotDist its hop
	// distance from the vantage point.
	Pivot     ipv4.Addr
	PivotDist int
	// ContraPivot is the member on the ingress router (hop distance
	// PivotDist-1); Zero if none was found.
	ContraPivot ipv4.Addr
	// Ingress is the ingress interface found by subnet positioning (Zero if
	// anonymous); TraceEntry is the previous trace-collection hop u.
	Ingress    ipv4.Addr
	TraceEntry ipv4.Addr
	// OnPath reports whether the subnet lies on the trace path (§3.4).
	OnPath bool
	// Stop records which rule terminated growth.
	Stop StopReason
	// Probes is the number of packets spent positioning and exploring this
	// subnet (the §3.6 overhead accounting).
	Probes uint64
	// Confidence is the answered fraction of the logical probes spent
	// positioning and exploring this subnet, in (0,1]. It degrades as the
	// network fails to answer — whether from unassigned space, rate
	// limiting, or injected faults — and is 1 for a fully answered growth.
	Confidence float64
	// Degraded marks a subnet collected under definite fault evidence
	// (corrupted replies, circuit-breaker load shedding, or recovered
	// transport errors): its membership is a lower bound, not a clean
	// observation, and evaluation should weigh it accordingly.
	Degraded bool
}

// Contains reports whether addr is a member of the collected subnet.
func (s *Subnet) Contains(addr ipv4.Addr) bool {
	for _, a := range s.Addrs {
		if a == addr {
			return true
		}
	}
	return false
}

// PointToPoint reports whether the observed subnet is a /31 or /30 link.
func (s *Subnet) PointToPoint() bool { return s.Prefix.Bits() >= 30 }

// String renders the subnet with its annotations.
func (s *Subnet) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v at hop %d:", s.Prefix, s.PivotDist)
	for _, a := range s.Addrs {
		switch a {
		case s.Pivot:
			fmt.Fprintf(&b, " %v(pivot)", a)
		case s.ContraPivot:
			fmt.Fprintf(&b, " %v(contra)", a)
		default:
			fmt.Fprintf(&b, " %v", a)
		}
	}
	if s.Degraded {
		fmt.Fprintf(&b, " [degraded conf=%.2f]", s.Confidence)
	}
	return b.String()
}

// Hop is one hop of a tracenet session.
type Hop struct {
	// TTL is the hop index (probe TTL in trace-collection mode).
	TTL int
	// Addr is the interface obtained in trace-collection mode; Zero for an
	// anonymous hop.
	Addr ipv4.Addr
	// Kind is the raw trace-collection probe outcome.
	Kind probe.Kind
	// Subnet is the subnet grown at this hop; nil when the hop was anonymous
	// or could not be positioned.
	Subnet *Subnet
	// Revisited is set when Addr already belonged to a subnet collected at an
	// earlier hop, which is then reused instead of re-explored.
	Revisited bool
	// Shared is set when the hop's exploration was served by the campaign's
	// shared subnet cache instead of this session's own probing. Which hops
	// are shared depends on worker scheduling, so renderers that promise
	// byte-stable output must ignore this flag (the subnet itself is
	// identical either way).
	Shared bool
	// Degraded is set when this hop's collection observed definite fault
	// evidence (corrupt replies, breaker skips, or a recovered transport
	// error); the hop and its subnet are degraded-but-usable, not clean.
	Degraded bool
}

// Anonymous reports whether the hop did not respond in trace collection.
func (h Hop) Anonymous() bool { return h.Addr.IsZero() }

// Result is a completed tracenet session.
type Result struct {
	Dst     ipv4.Addr
	Hops    []Hop
	Reached bool
	// Subnets are the distinct subnets collected, in discovery order.
	Subnets []*Subnet
	// Probe accounting per phase (§3.6). DefenseProbes counts the
	// cross-validation re-probes spent by Config.Defend (0 when off).
	TraceProbes    uint64
	PositionProbes uint64
	ExploreProbes  uint64
	DefenseProbes  uint64
	// Recovered counts transport errors the session absorbed by treating
	// the probe as silent instead of aborting (graceful degradation).
	Recovered uint64
	// BreakerLimited marks a trace that ended without reaching dst while the
	// circuit breaker was skipping probes: the silence that terminated it was
	// locally manufactured, not observed, so the outcome is provisional. Such
	// destinations are not recorded as done — a checkpoint resume (with a
	// fresh breaker) retries them instead of silently skipping.
	BreakerLimited bool
}

// DegradedSubnets returns the subnets of this result flagged as degraded.
func (r *Result) DegradedSubnets() []*Subnet {
	var out []*Subnet
	for _, s := range r.Subnets {
		if s.Degraded {
			out = append(out, s)
		}
	}
	return out
}

// TotalProbes returns the packets spent across all phases.
func (r *Result) TotalProbes() uint64 {
	return r.TraceProbes + r.PositionProbes + r.ExploreProbes + r.DefenseProbes
}

// AddrCount returns the number of distinct interface addresses discovered,
// including trace-collection addresses not placed into any subnet.
func (r *Result) AddrCount() int {
	set := map[ipv4.Addr]bool{}
	for _, h := range r.Hops {
		if !h.Anonymous() {
			set[h.Addr] = true
		}
	}
	for _, s := range r.Subnets {
		for _, a := range s.Addrs {
			set[a] = true
		}
	}
	return len(set)
}

// String renders the session, one hop per line with its subnet.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tracenet to %v (%d hops, reached=%v, probes=%d)\n",
		r.Dst, len(r.Hops), r.Reached, r.TotalProbes())
	for _, h := range r.Hops {
		if h.Anonymous() {
			fmt.Fprintf(&b, "%3d  *\n", h.TTL)
			continue
		}
		fmt.Fprintf(&b, "%3d  %v", h.TTL, h.Addr)
		if h.Subnet != nil {
			mark := ""
			if h.Revisited {
				mark = " (revisited)"
			}
			fmt.Fprintf(&b, "  subnet %v [%d addrs]%s", h.Subnet.Prefix, len(h.Subnet.Addrs), mark)
		}
		if h.Degraded {
			b.WriteString("  (degraded)")
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// sortAddrs sorts a member list ascending.
func sortAddrs(addrs []ipv4.Addr) {
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
}
