package core_test

import (
	"fmt"
	"log"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// ExampleTrace runs one tracenet session over the paper's Figure 3 scene and
// prints the collected subnets.
func ExampleTrace() {
	network := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := network.PortFor("vantage")
	if err != nil {
		log.Fatal(err)
	}
	prober := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})

	result, err := core.Trace(prober, ipv4.MustParseAddr("10.0.5.2"), core.Config{})
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range result.Subnets {
		fmt.Printf("%v with %d interfaces\n", s.Prefix, len(s.Addrs))
	}
	// Output:
	// 10.0.0.0/30 with 2 interfaces
	// 10.0.1.0/31 with 2 interfaces
	// 10.0.2.0/29 with 4 interfaces
	// 10.0.5.0/30 with 2 interfaces
}

// ExampleSession demonstrates multi-destination collection with subnet reuse.
func ExampleSession() {
	network := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := network.PortFor("vantage")
	if err != nil {
		log.Fatal(err)
	}
	prober := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	session := core.NewSession(prober, core.Config{})

	for _, dst := range []string{"10.0.5.2", "10.0.4.1"} {
		if _, err := session.Trace(ipv4.MustParseAddr(dst)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d distinct subnets collected\n", len(session.Subnets()))
	// Output:
	// 5 distinct subnets collected
}
