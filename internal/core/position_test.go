package core

import (
	"testing"

	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

func TestDirectDistanceExact(t *testing.T) {
	pr := prober(t, topo.Chain(6), netsim.Config{}, probe.Options{})
	cases := []struct {
		addr string
		hint int
		want int
	}{
		{"10.9.0.2", 1, 1},   // R1, exact hint
		{"10.9.0.2", 4, 1},   // R1, overshot hint: walk down
		{"10.9.1.3", 1, 3},   // R3's far iface, undershot hint: walk up
		{"10.9.255.2", 7, 7}, // destination
		{"10.9.255.2", 3, 7}, // destination, deep walk up
	}
	for _, c := range cases {
		got, err := directDistance(pr, addr(c.addr), c.hint, 30)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("directDistance(%s, hint %d) = %d, want %d", c.addr, c.hint, got, c.want)
		}
	}
}

func TestDirectDistanceUnreachable(t *testing.T) {
	pr := prober(t, topo.Chain(3), netsim.Config{}, probe.Options{NoRetry: true})
	got, err := directDistance(pr, addr("172.16.0.1"), 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got != -1 {
		t.Errorf("unreachable distance = %d, want -1", got)
	}
}

func TestPositionOnPath(t *testing.T) {
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	// v = R4's interface on S obtained at hop 3, u = R2's interface at hop 2.
	pos, err := findPosition(pr, addr("10.0.1.1"), addr("10.0.2.3"), 3, Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if !pos.ok {
		t.Fatal("positioning failed")
	}
	if !pos.onPath {
		t.Error("subnet S must be on the trace path")
	}
	if pos.pivot != addr("10.0.2.3") || pos.pivotDist != 3 {
		t.Errorf("pivot = %v at %d, want 10.0.2.3 at 3", pos.pivot, pos.pivotDist)
	}
	if pos.ingress != addr("10.0.1.1") {
		t.Errorf("ingress = %v, want 10.0.1.1", pos.ingress)
	}
}

func TestPositionDistanceMismatch(t *testing.T) {
	// Fabricated hop index: v sits at distance 3 but the caller claims 5.
	// Perceived distance wins, and the subnet is flagged off-path.
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	pos, err := findPosition(pr, addr("10.0.1.1"), addr("10.0.2.3"), 5, Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if !pos.ok {
		t.Fatal("positioning failed")
	}
	if pos.onPath {
		t.Error("distance mismatch must mark the subnet off-path")
	}
	if pos.pivotDist != 3 {
		t.Errorf("pivot distance = %d, want the perceived 3", pos.pivotDist)
	}
}

func TestPositionUnpositionable(t *testing.T) {
	top := topo.Figure3()
	for _, r := range top.Routers {
		if r.Name == "R4" {
			r.DirectPolicy = netsim.PolicyNil
		}
	}
	pr := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	pos, err := findPosition(pr, addr("10.0.1.1"), addr("10.0.2.3"), 3, Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if pos.ok {
		t.Fatalf("positioning succeeded for a direct-silent interface: %+v", pos)
	}
}

// figure4 builds the paper's Figure 4 scenario: router R3 answers indirect
// probes with its *default* interface R3.s, which sits on a side subnet Sn
// (off the trace path toward the destination). Subnet positioning must
// recognize that the reported interface's /31 mate lies one hop beyond and
// move the pivot there, so the off-path subnet Sn gets explored completely.
func figure4(t *testing.T) *netsim.Topology {
	t.Helper()
	b := netsim.NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	r3 := b.Router("R3")
	r7 := b.Router("R7") // the far side of Sn
	d := b.Host("dest")

	a := b.Subnet("10.4.0.0/30")
	b.Attach(v, a, "10.4.0.1")
	b.Attach(r1, a, "10.4.0.2")

	up := b.Subnet("10.4.1.0/31")
	b.Attach(r1, up, "10.4.1.0")
	b.Attach(r3, up, "10.4.1.1")

	sn := b.Subnet("10.4.2.0/31") // the side subnet Sn
	snIface := b.Attach(r3, sn, "10.4.2.0")
	b.Attach(r7, sn, "10.4.2.1")

	ds := b.Subnet("10.4.3.0/30")
	b.Attach(r3, ds, "10.4.3.1")
	b.Attach(d, ds, "10.4.3.2")

	r3.IndirectPolicy = netsim.PolicyDefault
	r3.DefaultIface = snIface

	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func TestPositionFigure4DefaultInterface(t *testing.T) {
	pr := prober(t, figure4(t), netsim.Config{}, probe.Options{})
	res, err := Trace(pr, addr("10.4.3.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatalf("not reached:\n%v", res)
	}
	// Hop 2 reports R3's default interface 10.4.2.0 (on Sn).
	if res.Hops[1].Addr != addr("10.4.2.0") {
		t.Fatalf("hop 2 = %v, want the default interface 10.4.2.0", res.Hops[1].Addr)
	}
	sn := res.Hops[1].Subnet
	if sn == nil {
		t.Fatalf("side subnet not explored:\n%v", res)
	}
	// The pivot moved to the far side (the /31 mate, one hop beyond), and
	// both interfaces of Sn were collected.
	if sn.Pivot != addr("10.4.2.1") || sn.PivotDist != 3 {
		t.Errorf("pivot = %v at %d, want 10.4.2.1 at 3", sn.Pivot, sn.PivotDist)
	}
	if !sn.Contains(addr("10.4.2.0")) || !sn.Contains(addr("10.4.2.1")) {
		t.Errorf("Sn members = %v, want both sides", sn.Addrs)
	}
	if sn.Prefix != pfx("10.4.2.0/31") {
		t.Errorf("Sn prefix = %v, want 10.4.2.0/31", sn.Prefix)
	}
}

func TestPositionAfterAnonymousPredecessor(t *testing.T) {
	// u anonymous: the on-path test cannot compare entry routers; the
	// wildcard semantics keep positioning usable.
	top := topo.Figure3()
	for _, r := range top.Routers {
		if r.Name == "R2" {
			r.IndirectPolicy = netsim.PolicyNil
		}
	}
	pr := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	pos, err := findPosition(pr, addr("0.0.0.0"), addr("10.0.2.3"), 3, Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if !pos.ok {
		t.Fatal("positioning failed with anonymous predecessor")
	}
	if !pos.onPath {
		t.Error("silent predecessor + anonymous u should be treated as on-path")
	}
}
