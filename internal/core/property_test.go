package core

import (
	"testing"

	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// TestInvariantsOnRandomTopologies drives full tracenet sessions over seeded
// random networks and checks the structural invariants every collected
// subnet must satisfy, whatever the topology looks like.
func TestInvariantsOnRandomTopologies(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		top, targets := topo.Random(topo.RandomSpec{Seed: seed, Unresponsive: 0.1})
		n := netsim.New(top, netsim.Config{Seed: seed})
		port, err := n.PortFor("vantage")
		if err != nil {
			t.Fatal(err)
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
		sess := NewSession(pr, Config{})
		for _, target := range targets {
			res, err := sess.Trace(target)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			checkResultInvariants(t, seed, res)
		}
		for _, s := range sess.Subnets() {
			checkSubnetInvariants(t, seed, top, s)
		}
	}
}

func checkResultInvariants(t *testing.T, seed int64, res *Result) {
	t.Helper()
	prevTTL := 0
	for _, h := range res.Hops {
		if h.TTL != prevTTL+1 {
			t.Fatalf("seed %d: hop TTLs not consecutive: %v after %d", seed, h.TTL, prevTTL)
		}
		prevTTL = h.TTL
		if h.Anonymous() && h.Subnet != nil {
			t.Fatalf("seed %d: anonymous hop carries a subnet", seed)
		}
	}
	if res.TotalProbes() != res.TraceProbes+res.PositionProbes+res.ExploreProbes {
		t.Fatalf("seed %d: probe accounting inconsistent", seed)
	}
}

func checkSubnetInvariants(t *testing.T, seed int64, top *netsim.Topology, s *Subnet) {
	t.Helper()
	// The pivot is always a member and inside the prefix.
	if !s.Prefix.Contains(s.Pivot) {
		t.Fatalf("seed %d: pivot %v outside prefix %v", seed, s.Pivot, s.Prefix)
	}
	if !s.Contains(s.Pivot) {
		t.Fatalf("seed %d: pivot %v not a member of %v", seed, s.Pivot, s.Addrs)
	}
	// Every member lies inside the observed prefix.
	for _, a := range s.Addrs {
		if !s.Prefix.Contains(a) {
			t.Fatalf("seed %d: member %v outside %v", seed, a, s.Prefix)
		}
	}
	// H9: no boundary members for prefixes shorter than /31.
	if s.Prefix.Bits() < 31 {
		for _, a := range s.Addrs {
			if s.Prefix.IsBoundary(a) {
				t.Fatalf("seed %d: boundary member %v in %v", seed, a, s.Prefix)
			}
		}
	}
	// A /32 record means exactly one member.
	if s.Prefix.Bits() == 32 && len(s.Addrs) != 1 {
		t.Fatalf("seed %d: /32 with %d members", seed, len(s.Addrs))
	}
	// The contra-pivot, when present, is a member.
	if !s.ContraPivot.IsZero() && !s.Contains(s.ContraPivot) {
		t.Fatalf("seed %d: contra-pivot %v not a member", seed, s.ContraPivot)
	}
	// Soundness against ground truth: every member is a real assigned
	// address (tracenet never invents interfaces), and all members of one
	// collected subnet belong to one real subnet.
	var realSubnet *netsim.Subnet
	for _, a := range s.Addrs {
		iface := top.IfaceByAddr(a)
		if iface == nil {
			t.Fatalf("seed %d: collected member %v is not an assigned address", seed, a)
		}
		if realSubnet == nil {
			realSubnet = iface.Subnet
		} else if iface.Subnet != realSubnet {
			t.Fatalf("seed %d: members of %v span real subnets %v and %v",
				seed, s.Prefix, realSubnet.Prefix, iface.Subnet.Prefix)
		}
	}
	// The observed prefix never exceeds the real subnet (no overestimation
	// is possible in these topologies: link spacing prevents same-head-end
	// adjacency).
	if realSubnet != nil && s.Prefix.Bits() < realSubnet.Prefix.Bits() {
		t.Fatalf("seed %d: observed %v larger than real %v", seed, s.Prefix, realSubnet.Prefix)
	}
}

// TestSessionDeterminism verifies that identical seeds and targets produce
// identical collections.
func TestSessionDeterminism(t *testing.T) {
	run := func() []string {
		top, targets := topo.Random(topo.RandomSpec{Seed: 3})
		n := netsim.New(top, netsim.Config{Seed: 3})
		port, err := n.PortFor("vantage")
		if err != nil {
			t.Fatal(err)
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
		sess := NewSession(pr, Config{})
		for _, target := range targets {
			if _, err := sess.Trace(target); err != nil {
				t.Fatal(err)
			}
		}
		var out []string
		for _, s := range sess.Subnets() {
			out = append(out, s.String())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in subnet count: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs differ at subnet %d:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// TestLossyNetworkInvariants re-runs the invariant suite under reply loss:
// results may shrink but must never become unsound.
func TestLossyNetworkInvariants(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		top, targets := topo.Random(topo.RandomSpec{Seed: seed})
		n := netsim.New(top, netsim.Config{Seed: seed, LossRate: 0.15})
		port, err := n.PortFor("vantage")
		if err != nil {
			t.Fatal(err)
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
		sess := NewSession(pr, Config{})
		for _, target := range targets {
			res, err := sess.Trace(target)
			if err != nil {
				t.Fatal(err)
			}
			checkResultInvariants(t, seed, res)
		}
		for _, s := range sess.Subnets() {
			checkSubnetInvariants(t, seed, top, s)
		}
	}
}

// TestPerPacketLoadBalancingInvariants re-runs the suite under the worst
// fluctuation mode (§3.7): per-packet balancing on every equal-cost choice.
func TestPerPacketLoadBalancingInvariants(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		top, targets := topo.Random(topo.RandomSpec{Seed: seed, ExtraLinks: 5})
		n := netsim.New(top, netsim.Config{Seed: seed, Mode: netsim.PerPacket})
		port, err := n.PortFor("vantage")
		if err != nil {
			t.Fatal(err)
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
		sess := NewSession(pr, Config{})
		for _, target := range targets {
			res, err := sess.Trace(target)
			if err != nil {
				t.Fatal(err)
			}
			checkResultInvariants(t, seed, res)
		}
		// Under per-packet fluctuation the distance bookkeeping can tear;
		// subnets may be underestimated (the paper accepts this, §3.7) but
		// membership soundness within one real subnet must still hold for
		// multi-member collections.
		for _, s := range sess.Subnets() {
			for _, a := range s.Addrs {
				if top.IfaceByAddr(a) == nil {
					t.Fatalf("seed %d: invented member %v", seed, a)
				}
			}
		}
	}
}

// TestMinPrefixFloor verifies that growth never crosses the configured
// floor.
func TestMinPrefixFloor(t *testing.T) {
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	res, err := Trace(pr, addr("10.0.5.2"), Config{MinPrefixBits: 30})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Subnets {
		if s.Prefix.Bits() < 30 {
			t.Fatalf("prefix %v crossed the /30 floor", s.Prefix)
		}
	}
}
