package core

import (
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// fakeCache is a single-goroutine SharedSubnetCache: a plain memo with full
// call recording, standing in for the campaign layer's single-flight cache.
type fakeCache struct {
	memo    map[hopContext]Growth
	lookups []hopContext
	grown   []hopContext
}

type hopContext struct {
	v, u ipv4.Addr
	d    int
}

func newFakeCache() *fakeCache {
	return &fakeCache{memo: make(map[hopContext]Growth)}
}

func (c *fakeCache) ExploreHop(v, u ipv4.Addr, d int, grow func() (Growth, error)) (Growth, bool, error) {
	key := hopContext{v, u, d}
	c.lookups = append(c.lookups, key)
	if g, ok := c.memo[key]; ok {
		return g, true, nil
	}
	g, err := grow()
	if err != nil {
		return Growth{}, false, err
	}
	c.memo[key] = g
	c.grown = append(c.grown, key)
	return g, false, nil
}

func sharedProber(t *testing.T, n *netsim.Network) *probe.Prober {
	t.Helper()
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	return probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
}

// TestSessionSharedCacheMissThenHit traces the same destination from two
// sessions sharing one cache: the first session grows every subnet (all
// misses), the second adopts every one of them (all hits) spending only
// trace-collection packets — and both report identical subnet sets.
func TestSessionSharedCacheMissThenHit(t *testing.T) {
	n := netsim.New(topo.Figure3(), netsim.Config{})
	dst := ipv4.MustParseAddr("10.0.5.2")
	cache := newFakeCache()

	first, err := NewSession(sharedProber(t, n), Config{Shared: cache}).Trace(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Subnets) == 0 {
		t.Fatal("first trace collected no subnets")
	}
	if len(cache.grown) != len(cache.lookups) {
		t.Fatalf("first trace: %d growths for %d lookups, want all misses",
			len(cache.grown), len(cache.lookups))
	}
	grownBefore := len(cache.grown)

	second, err := NewSession(sharedProber(t, n), Config{Shared: cache}).Trace(dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(cache.grown) != grownBefore {
		t.Fatalf("second trace grew %d new subnets, want 0 (all hits)",
			len(cache.grown)-grownBefore)
	}
	if second.PositionProbes != 0 || second.ExploreProbes != 0 {
		t.Fatalf("second trace spent position=%d explore=%d probes, want 0/0",
			second.PositionProbes, second.ExploreProbes)
	}
	if second.TraceProbes == 0 {
		t.Fatal("second trace spent no trace-collection probes")
	}

	if len(second.Subnets) != len(first.Subnets) {
		t.Fatalf("subnet counts differ: first %d, second %d", len(first.Subnets), len(second.Subnets))
	}
	for i := range first.Subnets {
		if first.Subnets[i] != second.Subnets[i] {
			t.Errorf("subnet %d: second trace did not adopt the shared *Subnet (%v vs %v)",
				i, first.Subnets[i].Prefix, second.Subnets[i].Prefix)
		}
	}
	shared := 0
	for _, h := range second.Hops {
		if h.Shared {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no hop of the second trace is marked Shared")
	}
}

// TestSessionSharedCacheEquivalence checks sharing is lossless: the rendered
// result of a cached trace equals that of an identical uncached trace (the
// Shared flag is deliberately not rendered).
func TestSessionSharedCacheEquivalence(t *testing.T) {
	dst := ipv4.MustParseAddr("10.0.5.2")

	plainNet := netsim.New(topo.Figure3(), netsim.Config{})
	plain, err := NewSession(sharedProber(t, plainNet), Config{}).Trace(dst)
	if err != nil {
		t.Fatal(err)
	}

	cachedNet := netsim.New(topo.Figure3(), netsim.Config{})
	cache := newFakeCache()
	// Warm the cache with one full trace, then re-trace from a fresh session.
	if _, err := NewSession(sharedProber(t, cachedNet), Config{Shared: cache}).Trace(dst); err != nil {
		t.Fatal(err)
	}
	cached, err := NewSession(sharedProber(t, cachedNet), Config{Shared: cache}).Trace(dst)
	if err != nil {
		t.Fatal(err)
	}

	// Hop structure and subnet values must match the uncached baseline;
	// only the probe accounting (and TotalProbes in the header) may differ.
	if len(cached.Hops) != len(plain.Hops) {
		t.Fatalf("hop counts differ: cached %d, plain %d", len(cached.Hops), len(plain.Hops))
	}
	for i := range plain.Hops {
		p, c := plain.Hops[i], cached.Hops[i]
		if p.Addr != c.Addr || p.Kind != c.Kind || (p.Subnet == nil) != (c.Subnet == nil) {
			t.Errorf("hop %d diverged: plain %+v, cached %+v", i, p, c)
			continue
		}
		if p.Subnet != nil && p.Subnet.String() != c.Subnet.String() {
			t.Errorf("hop %d subnet diverged:\nplain  %v\ncached %v", i, p.Subnet, c.Subnet)
		}
	}
	if cached.Reached != plain.Reached || cached.TraceProbes != plain.TraceProbes {
		t.Errorf("cached reached=%v trace-probes=%d, plain reached=%v trace-probes=%d",
			cached.Reached, cached.TraceProbes, plain.Reached, plain.TraceProbes)
	}
}

// TestSessionSharedCacheSkipKnownFirst checks the local SkipKnown index wins
// over the shared cache: once a subnet is adopted, later hops whose address
// is a member reuse it locally without another cache lookup.
func TestSessionSharedCacheSkipKnownFirst(t *testing.T) {
	n := netsim.New(topo.Figure3(), netsim.Config{})
	dst := ipv4.MustParseAddr("10.0.5.2")
	cache := newFakeCache()
	res, err := NewSession(sharedProber(t, n), Config{Shared: cache}).Trace(dst)
	if err != nil {
		t.Fatal(err)
	}
	revisits := 0
	for _, h := range res.Hops {
		if h.Revisited {
			revisits++
		}
	}
	// Every named hop either revisited locally or consulted the cache once.
	named := 0
	for _, h := range res.Hops {
		if !h.Anonymous() {
			named++
		}
	}
	if revisits+len(cache.lookups) != named {
		t.Errorf("revisits %d + cache lookups %d != named hops %d",
			revisits, len(cache.lookups), named)
	}
}
