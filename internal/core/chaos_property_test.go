package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// flakyTransport wraps a transport and fails every nth exchange with a
// transport error — the "socket died mid-walk" failure mode.
type flakyTransport struct {
	inner probe.Transport
	n     int
	count int
}

func (f *flakyTransport) Exchange(raw []byte) ([]byte, error) {
	f.count++
	if f.n > 0 && f.count%f.n == 0 {
		return nil, errors.New("simulated socket failure")
	}
	return f.inner.Exchange(raw)
}

// TestSessionNeverAbortsOnTransportErrors: a session over a transport that
// errors every few packets must complete every trace, absorb the failures as
// silence, and annotate the affected hops.
func TestSessionNeverAbortsOnTransportErrors(t *testing.T) {
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	for _, every := range []int{2, 3, 7, 13} {
		tr := &flakyTransport{inner: port, n: every}
		pr := probe.New(tr, port.LocalAddr(), probe.Options{Cache: true})
		sess := NewSession(pr, Config{})
		res, err := sess.Trace(addr("10.0.5.2"))
		if err != nil {
			t.Fatalf("every=%d: session aborted: %v", every, err)
		}
		if res.Recovered == 0 {
			t.Errorf("every=%d: no recoveries recorded", every)
		}
		degradedHop := false
		for _, h := range res.Hops {
			if h.Degraded {
				degradedHop = true
			}
		}
		if !degradedHop {
			t.Errorf("every=%d: recovered errors but no hop marked degraded:\n%v", every, res)
		}
	}
}

// TestSessionAbortsOnBudget: budget exhaustion is NOT absorbed — it must
// still propagate, or a runaway session would spin forever.
func TestSessionAbortsOnBudget(t *testing.T) {
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{Budget: 5})
	if _, err := NewSession(pr, Config{}).Trace(addr("10.0.5.2")); !errors.Is(err, probe.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want budget exhaustion", err)
	}
}

// TestDegradedAnnotationUnderCorruption: with a corruption fault active the
// session completes and flags the subnets whose collection saw mangled
// replies, with confidence below 1.
func TestDegradedAnnotationUnderCorruption(t *testing.T) {
	n := netsim.New(topo.Figure3(), netsim.Config{Seed: 2})
	if err := n.InstallFaults(netsim.FaultPlan{Seed: 5, Faults: []netsim.Fault{
		{Kind: netsim.FaultCorrupt, Prob: 0.3},
	}}); err != nil {
		t.Fatal(err)
	}
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := NewSession(pr, Config{})
	res, err := sess.Trace(addr("10.0.5.2"))
	if err != nil {
		t.Fatalf("session aborted under corruption: %v", err)
	}
	if pr.Stats().Corrupt == 0 {
		t.Fatal("fault plan injected no corruption; test is vacuous")
	}
	deg := sess.DegradedSubnets()
	if len(deg) == 0 {
		t.Fatalf("corruption observed (%d mangled) but no subnet flagged degraded:\n%v",
			pr.Stats().Corrupt, res)
	}
	for _, s := range deg {
		if s.Confidence >= 1 || s.Confidence <= 0 {
			t.Errorf("degraded subnet %v has confidence %v, want (0,1)", s.Prefix, s.Confidence)
		}
		if !strings.Contains(s.String(), "degraded") {
			t.Errorf("degraded subnet renders without annotation: %s", s)
		}
	}
}

// TestFaultFreeRunsStayClean: without faults no subnet may be flagged
// degraded and every confidence must be 1 on a lossless network.
func TestFaultFreeRunsStayClean(t *testing.T) {
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	sess := NewSession(pr, Config{})
	res, err := sess.Trace(addr("10.0.5.2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(sess.DegradedSubnets()) != 0 {
		t.Errorf("clean run produced degraded subnets:\n%v", res)
	}
	if res.Recovered != 0 {
		t.Errorf("clean run recorded %d recoveries", res.Recovered)
	}
	if strings.Contains(res.String(), "degraded") {
		t.Errorf("clean run renders degraded annotations:\n%v", res)
	}
}

// TestAdversarialChaosProperties drives 20 seeded random topologies, each
// under a random byzantine fault plan (lying, alias-confused, hidden and
// echoing responders all candidates), with defenses on. The properties that
// must hold for every seed: the session terminates without error or panic,
// quarantined addresses never survive as subnet members, and every
// degraded subnet keeps a sane confidence.
func TestAdversarialChaosProperties(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		topol, targets := topo.Random(topo.RandomSpec{Seed: seed, ExtraLinks: -1})
		n := netsim.New(topol, netsim.Config{Seed: seed})
		if err := n.InstallFaults(netsim.RandomAdversarialPlan(topol, seed)); err != nil {
			t.Fatalf("seed %d: install: %v", seed, err)
		}
		port, err := n.PortFor("vantage")
		if err != nil {
			t.Fatal(err)
		}
		pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
		sess := NewSession(pr, Config{Defend: true})
		for _, dst := range targets {
			if _, err := sess.Trace(dst); err != nil {
				t.Fatalf("seed %d: trace %v aborted: %v", seed, dst, err)
			}
		}
		quarantined := map[ipv4.Addr]bool{}
		for _, a := range sess.Quarantined() {
			quarantined[a] = true
		}
		for _, s := range sess.Subnets() {
			for _, a := range s.Addrs {
				if quarantined[a] {
					t.Errorf("seed %d: quarantined %v is a member of %v", seed, a, s.Prefix)
				}
			}
			if s.Confidence < 0 || s.Confidence > 1 {
				t.Errorf("seed %d: subnet %v confidence %v outside [0,1]", seed, s.Prefix, s.Confidence)
			}
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	sess := NewSession(pr, Config{})
	if _, err := sess.Trace(addr("10.0.5.2")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sess.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Subnets) != len(sess.Subnets()) {
		t.Fatalf("checkpoint has %d subnets, session %d", len(cp.Subnets), len(sess.Subnets()))
	}

	pr2 := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	resumed, err := NewSessionFromCheckpoint(pr2, Config{}, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.IsDone(addr("10.0.5.2")) {
		t.Error("resumed session lost the done set")
	}
	if resumed.IsDone(addr("10.0.3.1")) {
		t.Error("resumed session claims an untraced destination")
	}
	want := sess.Subnets()
	got := resumed.Subnets()
	if len(got) != len(want) {
		t.Fatalf("resumed %d subnets, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Prefix != want[i].Prefix {
			t.Errorf("subnet %d: prefix %v, want %v", i, got[i].Prefix, want[i].Prefix)
		}
		if len(got[i].Addrs) != len(want[i].Addrs) {
			t.Errorf("subnet %d: %d members, want %d", i, len(got[i].Addrs), len(want[i].Addrs))
		}
		if got[i].Pivot != want[i].Pivot || got[i].PivotDist != want[i].PivotDist ||
			got[i].ContraPivot != want[i].ContraPivot || got[i].Stop != want[i].Stop {
			t.Errorf("subnet %d annotations differ:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}

	// Resume saves probes: a second trace toward a different host behind the
	// same backbone reuses the restored subnets via SkipKnown.
	before := pr2.Stats().Sent
	res, err := resumed.Trace(addr("10.0.5.2"))
	if err != nil {
		t.Fatal(err)
	}
	cost := pr2.Stats().Sent - before
	freshCost := pr.Stats().Sent // the original session's full cost
	if cost >= freshCost {
		t.Errorf("resumed trace cost %d probes, original %d — no reuse", cost, freshCost)
	}
	revisits := 0
	for _, h := range res.Hops {
		if h.Revisited {
			revisits++
		}
	}
	if revisits == 0 {
		t.Errorf("resumed trace never revisited a restored subnet:\n%v", res)
	}
}

func TestCheckpointRejectsBadInput(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("{not json")); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := ReadCheckpoint(strings.NewReader(`{"version": 99, "subnets": []}`)); err == nil {
		t.Error("future version accepted")
	}
	pr := prober(t, topo.Figure3(), netsim.Config{}, probe.Options{})
	for name, cp := range map[string]*Checkpoint{
		"bad prefix": {Version: CheckpointVersion, Subnets: []CheckpointSubnet{
			{Prefix: "nope", Pivot: "10.0.0.1"}}},
		"bad pivot": {Version: CheckpointVersion, Subnets: []CheckpointSubnet{
			{Prefix: "10.0.0.0/30", Pivot: "x"}}},
		"member outside prefix": {Version: CheckpointVersion, Subnets: []CheckpointSubnet{
			{Prefix: "10.0.0.0/30", Pivot: "10.0.0.1", Addrs: []string{"10.9.0.1"}}}},
		"bad done entry": {Version: CheckpointVersion, Done: []string{"not-an-ip"}},
	} {
		if _, err := NewSessionFromCheckpoint(pr, Config{}, cp); err == nil {
			t.Errorf("%s: checkpoint accepted", name)
		}
	}
	// nil checkpoint is a fresh session, not an error.
	s, err := NewSessionFromCheckpoint(pr, Config{}, nil)
	if err != nil || s == nil {
		t.Errorf("nil checkpoint: (%v, %v)", s, err)
	}
}

// TestCheckpointMidCampaignResume splits a two-destination campaign across a
// checkpoint boundary and verifies the union of collected subnets matches an
// uninterrupted run.
func TestCheckpointMidCampaignResume(t *testing.T) {
	full := NewSession(prober(t, topo.Figure3(), netsim.Config{}, probe.Options{}), Config{})
	for _, d := range []string{"10.0.5.2", "10.0.3.1"} {
		if _, err := full.Trace(addr(d)); err != nil {
			t.Fatal(err)
		}
	}

	first := NewSession(prober(t, topo.Figure3(), netsim.Config{}, probe.Options{}), Config{})
	if _, err := first.Trace(addr("10.0.5.2")); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := first.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	second, err := NewSessionFromCheckpoint(
		prober(t, topo.Figure3(), netsim.Config{}, probe.Options{}), Config{}, cp)
	if err != nil {
		t.Fatal(err)
	}
	if second.IsDone(addr("10.0.3.1")) {
		t.Fatal("destination 10.0.3.1 wrongly marked done")
	}
	if _, err := second.Trace(addr("10.0.3.1")); err != nil {
		t.Fatal(err)
	}

	wantSet := map[string]bool{}
	for _, s := range full.Subnets() {
		wantSet[s.Prefix.String()] = true
	}
	gotSet := map[string]bool{}
	for _, s := range second.Subnets() {
		gotSet[s.Prefix.String()] = true
	}
	for p := range wantSet {
		if !gotSet[p] {
			t.Errorf("resumed campaign missing subnet %s", p)
		}
	}
	for p := range gotSet {
		if !wantSet[p] {
			t.Errorf("resumed campaign has extra subnet %s", p)
		}
	}
}

// TestBreakerTruncatedTraceNotDone is the regression test for a
// checkpoint/resume hole: a trace the circuit breaker cut short ends with
// err == nil (breaker skips read as local silence), but its terminating
// silence was manufactured, not observed. Such a destination must NOT be
// recorded done — a session resumed from the checkpoint (breaker starts
// closed) has to retry it rather than silently skip it.
func TestBreakerTruncatedTraceNotDone(t *testing.T) {
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{
		NoRetry: true,
		Breaker: &probe.BreakerConfig{Threshold: 2, Cooldown: 64, KeyBits: 24},
	})
	sess := NewSession(pr, Config{})

	// A reachable destination completes normally and is recorded done.
	if _, err := sess.Trace(addr("10.0.5.2")); err != nil {
		t.Fatal(err)
	}
	if !sess.IsDone(addr("10.0.5.2")) {
		t.Fatal("reached destination not recorded done")
	}

	// 172.16.0.1 is unroutable: every hop beyond the first is silent, the
	// breaker opens after two silences and skips the rest of the trace.
	res, err := sess.Trace(addr("172.16.0.1"))
	if err != nil {
		t.Fatalf("breaker-truncated trace errored: %v", err)
	}
	if res.Reached {
		t.Fatal("unroutable destination reported reached")
	}
	if pr.Stats().BreakerSkips == 0 {
		t.Fatal("scenario did not exercise the breaker: no skips recorded")
	}
	if !res.BreakerLimited {
		t.Error("truncated result not marked BreakerLimited")
	}
	if sess.IsDone(addr("172.16.0.1")) {
		t.Error("breaker-truncated destination recorded done; a resume would silently skip it")
	}

	// The checkpoint round-trip preserves the distinction.
	var buf bytes.Buffer
	if err := sess.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := NewSessionFromCheckpoint(pr, Config{}, cp)
	if err != nil {
		t.Fatal(err)
	}
	if !resumed.IsDone(addr("10.0.5.2")) || resumed.IsDone(addr("172.16.0.1")) {
		t.Errorf("resumed done list wrong: done=%v", resumed.Done())
	}
}
