package core

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"tracenet/internal/invariant"
	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
)

// CheckpointVersion is the current checkpoint schema version.
const CheckpointVersion = 1

// Checkpoint is a serializable snapshot of a partially-collected session:
// every subnet grown so far plus the destinations already traced to
// completion. A campaign interrupted mid-run (crash, fault storm, operator
// stop) resumes from its checkpoint without re-spending the probes that
// collected the snapshot — the SkipKnown optimization treats restored
// subnets exactly like subnets grown in this run.
type Checkpoint struct {
	Version int                `json:"version"`
	Subnets []CheckpointSubnet `json:"subnets"`
	// Done lists destinations whose traces completed, in trace order.
	Done []string `json:"done,omitempty"`
}

// CheckpointSubnet is the serialized form of one collected Subnet.
type CheckpointSubnet struct {
	Prefix      string   `json:"prefix"`
	Addrs       []string `json:"addrs"`
	Pivot       string   `json:"pivot"`
	PivotDist   int      `json:"pivot_dist"`
	ContraPivot string   `json:"contra_pivot,omitempty"`
	Ingress     string   `json:"ingress,omitempty"`
	TraceEntry  string   `json:"trace_entry,omitempty"`
	OnPath      bool     `json:"on_path,omitempty"`
	Stop        string   `json:"stop,omitempty"`
	Probes      uint64   `json:"probes,omitempty"`
	Confidence  float64  `json:"confidence,omitempty"`
	Degraded    bool     `json:"degraded,omitempty"`
}

// SnapshotSubnet serializes one collected subnet. Campaign checkpoints
// (internal/collect) share this representation with session checkpoints.
func SnapshotSubnet(sub *Subnet) CheckpointSubnet {
	cs := CheckpointSubnet{
		Prefix:     sub.Prefix.String(),
		Pivot:      sub.Pivot.String(),
		PivotDist:  sub.PivotDist,
		OnPath:     sub.OnPath,
		Stop:       string(sub.Stop),
		Probes:     sub.Probes,
		Confidence: sub.Confidence,
		Degraded:   sub.Degraded,
	}
	for _, a := range sub.Addrs {
		// The write-side mirror of Restore()'s membership validation: a
		// subnet must never checkpoint members outside its own prefix.
		invariant.Assertf(sub.Prefix.Contains(a),
			"core: checkpoint subnet %v holds stray member %v", sub.Prefix, a)
		cs.Addrs = append(cs.Addrs, a.String())
	}
	if !sub.ContraPivot.IsZero() {
		cs.ContraPivot = sub.ContraPivot.String()
	}
	if !sub.Ingress.IsZero() {
		cs.Ingress = sub.Ingress.String()
	}
	if !sub.TraceEntry.IsZero() {
		cs.TraceEntry = sub.TraceEntry.String()
	}
	return cs
}

// Checkpoint snapshots the session's collected state.
func (s *Session) Checkpoint() *Checkpoint {
	cp := &Checkpoint{Version: CheckpointVersion}
	for _, sub := range s.subnets {
		cp.Subnets = append(cp.Subnets, SnapshotSubnet(sub))
	}
	for _, d := range s.done {
		cp.Done = append(cp.Done, d.String())
	}
	return cp
}

// WriteCheckpoint serializes the session's checkpoint as indented JSON.
func (s *Session) WriteCheckpoint(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Checkpoint())
}

// ReadCheckpoint decodes and validates a JSON checkpoint.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("core: checkpoint: %w", err)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	return &cp, nil
}

// Restore converts a checkpointed subnet back to its in-memory form,
// validating prefixes, addresses, and membership.
func (cs CheckpointSubnet) Restore() (*Subnet, error) {
	prefix, err := ipv4.ParsePrefix(cs.Prefix)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint subnet: %w", err)
	}
	pivot, err := ipv4.ParseAddr(cs.Pivot)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint subnet %s: %w", cs.Prefix, err)
	}
	// Confidence is documented (0,1]. The field is omitempty, so a checkpoint
	// written before confidence tracking existed (or a fully-clean snapshot
	// round-tripped through tooling that drops zero fields) decodes as 0 —
	// normalize that to 1 ("fully answered") instead of restoring a subnet
	// that violates the contract. Values actually outside the range are
	// corruption, not legacy, and are rejected.
	conf := cs.Confidence
	if conf == 0 {
		conf = 1
	}
	if conf < 0 || conf > 1 {
		return nil, fmt.Errorf("core: checkpoint subnet %s: confidence %v outside (0,1]", cs.Prefix, cs.Confidence)
	}
	sub := &Subnet{
		Prefix:     prefix,
		Pivot:      pivot,
		PivotDist:  cs.PivotDist,
		OnPath:     cs.OnPath,
		Stop:       StopReason(cs.Stop),
		Probes:     cs.Probes,
		Confidence: conf,
		Degraded:   cs.Degraded,
	}
	for _, a := range cs.Addrs {
		addr, err := ipv4.ParseAddr(a)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint subnet %s: %w", cs.Prefix, err)
		}
		if !prefix.Contains(addr) {
			return nil, fmt.Errorf("core: checkpoint subnet %s: member %s outside prefix", cs.Prefix, a)
		}
		sub.Addrs = append(sub.Addrs, addr)
	}
	parseOpt := func(s string, dst *ipv4.Addr) error {
		if s == "" {
			return nil
		}
		a, err := ipv4.ParseAddr(s)
		if err != nil {
			return fmt.Errorf("core: checkpoint subnet %s: %w", cs.Prefix, err)
		}
		*dst = a
		return nil
	}
	if err := parseOpt(cs.ContraPivot, &sub.ContraPivot); err != nil {
		return nil, err
	}
	if err := parseOpt(cs.Ingress, &sub.Ingress); err != nil {
		return nil, err
	}
	if err := parseOpt(cs.TraceEntry, &sub.TraceEntry); err != nil {
		return nil, err
	}
	return sub, nil
}

// NewSessionFromCheckpoint creates a session over pr preloaded with the
// subnets of a checkpoint: restored subnets are reused by SkipKnown instead
// of re-explored, and destinations listed in the checkpoint's Done set are
// reported by IsDone so a resumed campaign can skip them.
func NewSessionFromCheckpoint(pr *probe.Prober, cfg Config, cp *Checkpoint) (*Session, error) {
	if cp == nil {
		return NewSession(pr, cfg), nil
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("core: checkpoint version %d, want %d", cp.Version, CheckpointVersion)
	}
	s := NewSession(pr, cfg)
	for _, cs := range cp.Subnets {
		sub, err := cs.Restore()
		if err != nil {
			return nil, err
		}
		s.subnets = append(s.subnets, sub)
		for _, a := range sub.Addrs {
			if _, dup := s.collected[a]; !dup {
				s.collected[a] = sub
			}
		}
	}
	for _, d := range cp.Done {
		addr, err := ipv4.ParseAddr(d)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint done list: %w", err)
		}
		s.done = append(s.done, addr)
	}
	// Resumed state is visible in telemetry: restored subnets count under
	// their own metric (not tracenet_session_subnets_total, which counts
	// subnets grown in this run), and the resume point lands in the trace.
	s.tel.Counter("tracenet_session_restored_subnets_total").Add(uint64(len(cp.Subnets)))
	s.tel.Instant("resume",
		"subnets", strconv.Itoa(len(cp.Subnets)),
		"done", strconv.Itoa(len(cp.Done)))
	return s, nil
}

// IsDone reports whether dst was already traced to completion, either in
// this run or in the checkpoint this session was resumed from.
func (s *Session) IsDone(dst ipv4.Addr) bool {
	for _, d := range s.done {
		if d == dst {
			return true
		}
	}
	return false
}
