package core

// Config tunes a tracenet session. The zero value selects the paper's
// behaviour; the ablation switches disable individual design choices for the
// benchmarks called out in DESIGN.md.
type Config struct {
	// MaxTTL bounds the trace length. Default 30.
	MaxTTL int
	// MaxConsecutiveGaps ends the trace after this many anonymous hops in a
	// row. Default 4.
	MaxConsecutiveGaps int
	// MinPrefixBits bounds subnet growth: exploration never grows past this
	// prefix length (Algorithm 1's loop would run m down to 0; operationally
	// /20 is the largest subnet the paper observes). Default 20.
	MinPrefixBits int

	// SkipKnown reuses a subnet already collected earlier in the session when
	// the trace-collection address is one of its members, instead of
	// re-exploring (the optimization the paper alludes to in §3.5:
	// "our tracenet implementation is optimized to collect the subnets with
	// the least number of probes"). Default true; set DisableSkipKnown for
	// the ablation.
	DisableSkipKnown bool

	// DisableHalfFillStop removes Algorithm 1's lines 19–21 stopping rule
	// (ablation: sparse subnets then overgrow until a heuristic fires).
	DisableHalfFillStop bool

	// SingleIngress makes H6 accept only the positioning ingress i, not the
	// trace-collection entry u (ablation of the §3.7 two-ingress tolerance).
	SingleIngress bool

	// TopDown replaces bottom-up growth with the §3.8 strawman: assume a
	// large subnet (MinPrefixBits) and shrink while heuristics fail
	// (ablation; markedly more probes on small subnets).
	TopDown bool

	// Defend enables the adversarial defenses: cross-validation of trace and
	// membership observations from a second probe/TTL position, and
	// quarantine of addresses whose responses are internally inconsistent.
	// Default off — the paper's behaviour, which trusts every reply. See
	// DESIGN.md §11.
	Defend bool

	// Shared, when non-nil, lets this session share subnet explorations with
	// other sessions of the same campaign (see SharedSubnetCache). Before an
	// owned growth the session clears its prober's response cache so the
	// growth's wire cost is a pure function of the hop context.
	Shared SharedSubnetCache
}

func (c Config) withDefaults() Config {
	if c.MaxTTL == 0 {
		c.MaxTTL = 30
	}
	if c.MaxConsecutiveGaps == 0 {
		c.MaxConsecutiveGaps = 4
	}
	if c.MinPrefixBits == 0 {
		c.MinPrefixBits = 20
	}
	return c
}
