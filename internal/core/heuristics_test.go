package core

import (
	"testing"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
)

// fringeScene builds the common scaffold for the per-heuristic tests:
//
//	vantage --/30-- R1 --/31-- R2 ==S== {m3..m6, dest-router}
//
// S is 10.7.0.0/29 with six members (.1 on R2 = contra-pivot side, .2–.6 on
// stub routers), dense enough (6 > 8/2) that exploration grows past /29 into
// the /28, whose upper half (.8–.15) each test populates with a fringe
// structure. The destination host hangs behind the router holding .2, so a
// trace to it explores S at hop 3 with pivot .2.
type fringeScene struct {
	b       *netsim.Builder
	r1, r2  *netsim.Router
	members []*netsim.Router // routers holding .2...6
	s       *netsim.Subnet
}

func newFringeScene() *fringeScene {
	b := netsim.NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	r2 := b.Router("R2")

	a := b.Subnet("10.255.0.0/30")
	b.Attach(v, a, "10.255.0.1")
	b.Attach(r1, a, "10.255.0.2")

	up := b.Subnet("10.255.1.0/31")
	b.Attach(r1, up, "10.255.1.0")
	b.Attach(r2, up, "10.255.1.1")

	s := b.Subnet("10.7.0.0/29")
	b.Attach(r2, s, "10.7.0.1")
	var members []*netsim.Router
	for i := 2; i <= 6; i++ {
		m := b.Router("M" + itoa(i))
		b.AttachA(m, s, addr("10.7.0.0")+ipv4.Addr(i))
		members = append(members, m)
	}

	d := b.Host("dest")
	ds := b.Subnet("10.255.2.0/30")
	b.Attach(members[0], ds, "10.255.2.1")
	b.Attach(d, ds, "10.255.2.2")

	return &fringeScene{b: b, r1: r1, r2: r2, members: members, s: s}
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return itoa(i/10) + itoa(i%10)
}

// runScene traces to the destination and returns the subnet collected for S.
func runScene(t *testing.T, sc *fringeScene) *Subnet {
	t.Helper()
	top, err := sc.b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	res, err := Trace(pr, addr("10.255.2.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Subnets {
		if s.Prefix.Contains(addr("10.7.0.2")) {
			return s
		}
	}
	t.Fatalf("subnet S not collected:\n%v", res)
	return nil
}

func assertExactS(t *testing.T, s *Subnet, wantStop StopReason, fringe ...string) {
	t.Helper()
	if s.Prefix != pfx("10.7.0.0/29") {
		t.Errorf("prefix = %v, want 10.7.0.0/29 (stop=%v, members=%v)", s.Prefix, s.Stop, s.Addrs)
	}
	if s.Stop != wantStop {
		t.Errorf("stop = %v, want %v", s.Stop, wantStop)
	}
	for _, f := range fringe {
		if s.Contains(addr(f)) {
			t.Errorf("fringe %s leaked into subnet: %v", f, s.Addrs)
		}
	}
}

func TestH2CatchesFartherAddressSpace(t *testing.T) {
	// 10.7.0.8/31 between member router M2 (.9) and a deeper router (.8):
	// the deeper endpoint sorts first, so exploration of the /28 probes an
	// address one hop past the subnet — H2's TTL expiry fires.
	sc := newFringeScene()
	deep := sc.b.Router("Deep")
	f := sc.b.Subnet("10.7.0.8/31")
	sc.b.Attach(deep, f, "10.7.0.8")
	sc.b.Attach(sc.members[0], f, "10.7.0.9")
	s := runScene(t, sc)
	assertExactS(t, s, StopH2, "10.7.0.8", "10.7.0.9")
}

func TestH3CatchesSecondContraPivot(t *testing.T) {
	// 10.7.0.8/31 with the *ingress router's* interface first (.8 on R2):
	// alive one hop closer while a contra-pivot already exists — the
	// ingress-fringe signal of H3.
	sc := newFringeScene()
	r7 := sc.b.Router("R7")
	tt := sc.b.Subnet("10.7.0.8/31")
	sc.b.Attach(sc.r2, tt, "10.7.0.8")
	sc.b.Attach(r7, tt, "10.7.0.9")
	s := runScene(t, sc)
	assertExactS(t, s, StopH3, "10.7.0.8", "10.7.0.9")
	if s.ContraPivot != addr("10.7.0.1") {
		t.Errorf("contra-pivot = %v, want 10.7.0.1", s.ContraPivot)
	}
}

func TestH4CatchesTwoHopsCloser(t *testing.T) {
	// R2's interface on S is unresponsive, so no contra-pivot is ever found;
	// R1 (two hops closer than the pivot) owns 10.7.0.8. The candidate is
	// alive at jh-1 *and* jh-2 — H4's lower-bound contiguity fires.
	sc := newFringeScene()
	r9 := sc.b.Router("R9")
	f := sc.b.Subnet("10.7.0.8/31")
	sc.b.Attach(sc.r1, f, "10.7.0.8")
	sc.b.Attach(r9, f, "10.7.0.9")
	top, err := sc.b.Build()
	if err != nil {
		t.Fatal(err)
	}
	top.IfaceByAddr(addr("10.7.0.1")).Responsive = false
	pr := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	res, err := Trace(pr, addr("10.255.2.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var s *Subnet
	for _, sub := range res.Subnets {
		if sub.Prefix.Contains(addr("10.7.0.2")) {
			s = sub
		}
	}
	if s == nil {
		t.Fatalf("S not collected:\n%v", res)
	}
	if s.Stop != StopH4 {
		t.Errorf("stop = %v, want H4 (members=%v)", s.Stop, s.Addrs)
	}
	if s.Contains(addr("10.7.0.8")) {
		t.Errorf("R1's fringe interface leaked: %v", s.Addrs)
	}
	if !s.ContraPivot.IsZero() {
		t.Errorf("contra-pivot = %v, want none (unresponsive)", s.ContraPivot)
	}
}

func TestH6CatchesDifferentEntryPoint(t *testing.T) {
	// A parallel subnet X = 10.7.0.8/29 at the same hop distance but reached
	// through a different branch (R1→R2b): its members answer at jh and pass
	// H3, but the entry router observed at jh-1 is neither the ingress i nor
	// the trace predecessor u — H6 fires.
	sc := newFringeScene()
	r2b := sc.b.Router("R2b")
	up2 := sc.b.Subnet("10.255.1.2/31")
	sc.b.Attach(sc.r1, up2, "10.255.1.2")
	sc.b.Attach(r2b, up2, "10.255.1.3")

	x := sc.b.Subnet("10.7.0.8/29")
	sc.b.Attach(r2b, x, "10.7.0.14") // high address: members are examined first
	for i := 9; i <= 10; i++ {
		m := sc.b.Router("X" + itoa(i))
		sc.b.AttachA(m, x, addr("10.7.0.0")+ipv4.Addr(i))
	}
	s := runScene(t, sc)
	assertExactS(t, s, StopH6, "10.7.0.9", "10.7.0.10", "10.7.0.14")
}

func TestH7CatchesFarFringe(t *testing.T) {
	// 10.7.0.8/31 between member router M2 (.8) and a router one hop deeper
	// (.9): the candidate .8 is at the right distance and enters through the
	// right router, but its /31 mate lies one hop beyond — H7's far-fringe
	// signal.
	sc := newFringeScene()
	r5 := sc.b.Router("R5")
	f := sc.b.Subnet("10.7.0.8/31")
	sc.b.Attach(sc.members[0], f, "10.7.0.8")
	sc.b.Attach(r5, f, "10.7.0.9")
	s := runScene(t, sc)
	assertExactS(t, s, StopH7, "10.7.0.8", "10.7.0.9")
}

func TestH8CatchesCloseFringe(t *testing.T) {
	// 10.7.0.8/31 between a stub router R7 (.8, one hop past the ingress)
	// and the ingress router R2 (.9): the candidate .8 passes H2–H7 but its
	// /31 mate is alive one hop closer, on the ingress router — H8's
	// close-fringe signal.
	sc := newFringeScene()
	r7 := sc.b.Router("R7")
	tt := sc.b.Subnet("10.7.0.8/31")
	sc.b.Attach(r7, tt, "10.7.0.8")
	sc.b.Attach(sc.r2, tt, "10.7.0.9")
	s := runScene(t, sc)
	assertExactS(t, s, StopH8, "10.7.0.8", "10.7.0.9")
}

func TestHalfFillStopsSparseGrowth(t *testing.T) {
	// With nothing in the upper /28 half, growth stops by the half-fill rule
	// and the subnet comes out as the covering prefix of its six members.
	sc := newFringeScene()
	s := runScene(t, sc)
	if s.Stop != StopHalfFill {
		t.Errorf("stop = %v, want half-fill", s.Stop)
	}
	if s.Prefix != pfx("10.7.0.0/29") {
		t.Errorf("prefix = %v, want 10.7.0.0/29", s.Prefix)
	}
	if len(s.Addrs) != 6 {
		t.Errorf("members = %v, want 6", s.Addrs)
	}
}

func TestH9BoundaryReduction(t *testing.T) {
	// A /28 whose utilized addresses all sit in the upper /29 half,
	// including .8 — the network address of the covering /29. H9 must split
	// until no boundary address remains.
	b := netsim.NewBuilder()
	v := b.Host("vantage")
	r1 := b.Router("R1")
	r2 := b.Router("R2")
	a := b.Subnet("10.255.0.0/30")
	b.Attach(v, a, "10.255.0.1")
	b.Attach(r1, a, "10.255.0.2")
	up := b.Subnet("10.255.1.0/31")
	b.Attach(r1, up, "10.255.1.0")
	b.Attach(r2, up, "10.255.1.1")

	s := b.Subnet("10.8.0.0/28")
	b.Attach(r2, s, "10.8.0.13")
	var first *netsim.Router
	for _, off := range []int{8, 9, 10, 11, 12, 14} {
		m := b.Router("M" + itoa(off))
		b.AttachA(m, s, addr("10.8.0.0")+ipv4.Addr(off))
		if first == nil {
			first = m
		}
	}
	d := b.Host("dest")
	ds := b.Subnet("10.255.2.0/30")
	b.Attach(first, ds, "10.255.2.1")
	b.Attach(d, ds, "10.255.2.2")
	top, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	res, err := Trace(pr, addr("10.255.2.2"), Config{})
	if err != nil {
		t.Fatal(err)
	}
	var sub *Subnet
	for _, x := range res.Subnets {
		if x.Prefix.Contains(addr("10.8.0.9")) {
			sub = x
		}
	}
	if sub == nil {
		t.Fatalf("subnet not collected:\n%v", res)
	}
	// Whatever the final prefix, H9 guarantees it contains no boundary
	// member.
	if sub.Prefix.Bits() < 31 {
		for _, m := range sub.Addrs {
			if sub.Prefix.IsBoundary(m) {
				t.Fatalf("boundary member %v in %v (addrs %v)", m, sub.Prefix, sub.Addrs)
			}
		}
	}
	for _, m := range sub.Addrs {
		if !sub.Prefix.Contains(m) {
			t.Fatalf("member %v outside %v", m, sub.Prefix)
		}
	}
}

func TestSingleIngressAblationShrinksEarly(t *testing.T) {
	// Under per-flow load balancing across two parallel R1→{R2,R2b}→S
	// entries, probes to different member addresses enter the subnet through
	// different routers. When the trace-collection entry u and the
	// positioning ingress i capture the two distinct branches, two-ingress
	// H6 passes every member, while the single-ingress ablation shrinks the
	// subnet at the first member entering through the other branch (§3.7).
	// Which branch a flow hashes to depends on the addresses, so we scan
	// flow IDs for a split scenario and require one to exist.
	build := func() *netsim.Topology {
		b := netsim.NewBuilder()
		v := b.Host("vantage")
		r1 := b.Router("R1")
		r2 := b.Router("R2")
		r2b := b.Router("R2b")
		a := b.Subnet("10.255.0.0/30")
		b.Attach(v, a, "10.255.0.1")
		b.Attach(r1, a, "10.255.0.2")
		up := b.Subnet("10.255.1.0/31")
		b.Attach(r1, up, "10.255.1.0")
		b.Attach(r2, up, "10.255.1.1")
		up2 := b.Subnet("10.255.1.2/31")
		b.Attach(r1, up2, "10.255.1.2")
		b.Attach(r2b, up2, "10.255.1.3")
		s := b.Subnet("10.7.0.0/28")
		b.Attach(r2, s, "10.7.0.1")
		b.Attach(r2b, s, "10.7.0.2")
		var first *netsim.Router
		for i := 3; i <= 9; i++ {
			m := b.Router("M" + itoa(i))
			b.AttachA(m, s, addr("10.7.0.0")+ipv4.Addr(i))
			if first == nil {
				first = m
			}
		}
		d := b.Host("dest")
		ds := b.Subnet("10.255.2.0/30")
		b.Attach(first, ds, "10.255.2.1")
		b.Attach(d, ds, "10.255.2.2")
		return b.MustBuild()
	}

	collect := func(cfg Config, flowID uint16) *Subnet {
		pr := prober(t, build(), netsim.Config{Mode: netsim.PerFlow}, probe.Options{NoRetry: true, FlowID: flowID})
		res, err := Trace(pr, addr("10.255.2.2"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range res.Subnets {
			if s.Prefix.Contains(addr("10.7.0.3")) {
				return s
			}
		}
		return nil
	}

	found := false
	for flowID := uint16(1); flowID <= 64 && !found; flowID++ {
		full := collect(Config{}, flowID)
		if full == nil || len(full.Addrs) < 8 {
			continue // u and i landed on the same branch for this flow
		}
		single := collect(Config{SingleIngress: true}, flowID)
		singleN := 0
		if single != nil {
			singleN = len(single.Addrs)
		}
		if singleN < len(full.Addrs) {
			found = true
		}
	}
	if !found {
		t.Fatal("no flow exhibited the two-ingress advantage over 64 flow IDs")
	}
}

// examineIn positions the fringe-scene subnet and runs the heuristics on one
// candidate address, returning the verdict and the recorded stop reason.
// (The full-scene tests can shrink earlier at the /30's unassigned network
// address — probing it at the pivot distance expires at the attached router,
// an H2 signal the paper's Algorithm 1 line 14 anticipates — so the mate-30
// fallbacks are pinned at the unit level.)
func examineIn(t *testing.T, sc *fringeScene, candidate string) (examineVerdict, StopReason) {
	t.Helper()
	top, err := sc.b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pr := prober(t, top, netsim.Config{}, probe.Options{NoRetry: true})
	pos, err := findPosition(pr, addr("10.255.1.1"), addr("10.7.0.2"), 3, Config{}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	if !pos.ok {
		t.Fatal("positioning failed")
	}
	e := &explorer{
		pr: pr, cfg: Config{}.withDefaults(),
		pivot: pos.pivot, pd: pos.pivotDist, ingress: pos.ingress,
		onPath: pos.onPath, traceEntry: addr("10.255.1.1"),
		members: map[ipv4.Addr]bool{pos.pivot: true},
		probed:  map[ipv4.Addr]bool{pos.pivot: true},
	}
	// Establish the contra-pivot first, as ascending exploration would.
	if _, err := e.examine(addr("10.7.0.1")); err != nil {
		t.Fatal(err)
	}
	v, err := e.examine(addr(candidate))
	if err != nil {
		t.Fatal(err)
	}
	return v, e.stop
}

func TestH7Mate30Fallback(t *testing.T) {
	// The far-fringe link uses the two usable hosts of a /30, so the
	// candidate's /31 mate is the unassigned network address; H7 must fall
	// back to the /30 mate to catch the interface one hop beyond.
	sc := newFringeScene()
	r5 := sc.b.Router("R5")
	f := sc.b.Subnet("10.7.0.8/30") // usable hosts .9 (M2, near) and .10 (R5, deep)
	sc.b.Attach(sc.members[0], f, "10.7.0.9")
	sc.b.Attach(r5, f, "10.7.0.10")
	v, stop := examineIn(t, sc, "10.7.0.9")
	if v != verdictShrink || stop != StopH7 {
		t.Fatalf("examine = %v stop=%v, want shrink via H7's /30-mate fallback", v, stop)
	}
}

func TestH8Mate30FallbackUnreachable(t *testing.T) {
	// A close fringe over a /30 whose /31 mate is unassigned: one might
	// expect H8's /30-mate fallback to fire, but in a coherent CIDR plan the
	// unassigned /31 mate is still covered by the fringe subnet, so probing
	// it at jh-1 expires at the ingress router — H8's "mate farther back"
	// branch passes and the fallback never runs (the paper's snippet only
	// falls back on silence or host-unreachable). The candidate slips
	// through H8...
	sc := newFringeScene()
	r7 := sc.b.Router("R7")
	tt := sc.b.Subnet("10.7.0.8/30")
	sc.b.Attach(r7, tt, "10.7.0.9")
	sc.b.Attach(sc.r2, tt, "10.7.0.10")
	v, stop := examineIn(t, sc, "10.7.0.9")
	if v != verdictMember || stop != StopNone {
		t.Fatalf("examine = %v stop=%v; expected the documented H8 evasion", v, stop)
	}
	// ...but full exploration still excludes the fringe: the ingress
	// router's own /30 interface (.10, one hop closer) trips H3's
	// second-contra-pivot rule and the subnet shrinks back to its true /29.
	sc2 := newFringeScene()
	r7b := sc2.b.Router("R7")
	tt2 := sc2.b.Subnet("10.7.0.8/30")
	sc2.b.Attach(r7b, tt2, "10.7.0.9")
	sc2.b.Attach(sc2.r2, tt2, "10.7.0.10")
	s := runScene(t, sc2)
	assertExactS(t, s, StopH3, "10.7.0.9", "10.7.0.10")
}
