package core

import (
	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
)

// explorer grows one subnet around a pivot interface (paper §3.3,
// Algorithm 1), applying heuristics H1–H9 (§3.5) to every candidate address.
type explorer struct {
	pr  *probe.Prober
	cfg Config

	pivot      ipv4.Addr
	pd         int       // jh: pivot hop distance
	ingress    ipv4.Addr // i: ingress interface from positioning (Zero if anonymous)
	traceEntry ipv4.Addr // u: previous trace-collection hop (Zero if anonymous)
	onPath     bool

	members    map[ipv4.Addr]bool
	contra     ipv4.Addr
	probed     map[ipv4.Addr]bool
	mate31Dead bool // pivot's /31 mate found not in use (enables the H5 /30 shortcut)
	stop       StopReason

	// quarantined, when non-nil, bars candidates the session has quarantined
	// (Config.Defend) from ever becoming members.
	quarantined func(ipv4.Addr) bool
}

// examineVerdict is the outcome of running the heuristics on one candidate.
type examineVerdict uint8

const (
	verdictSkip   examineVerdict = iota // continue-with-next-address
	verdictMember                       // passed all heuristics
	verdictShrink                       // stop-and-shrink (H1)
)

// explore runs subnet exploration and returns the collected subnet.
// quarantined, when non-nil, bars the given addresses from membership.
func explore(pr *probe.Prober, pos position, u ipv4.Addr, cfg Config,
	quarantined func(ipv4.Addr) bool) (*Subnet, error) {
	e := &explorer{
		pr:          pr,
		cfg:         cfg,
		pivot:       pos.pivot,
		pd:          pos.pivotDist,
		ingress:     pos.ingress,
		traceEntry:  u,
		onPath:      pos.onPath,
		members:     map[ipv4.Addr]bool{pos.pivot: true},
		probed:      map[ipv4.Addr]bool{pos.pivot: true},
		quarantined: quarantined,
	}
	var prefix ipv4.Prefix
	var err error
	if cfg.TopDown {
		prefix, err = e.growTopDown()
	} else {
		prefix, err = e.grow()
	}
	if err != nil {
		return nil, err
	}
	prefix = e.reduceBoundary(prefix) // H9
	if len(e.members) <= 1 {
		// No companion interface was ever confirmed: tracenet "failed to
		// grow a subnet larger than /32" (the un-subnetized class of
		// Figure 7), whatever prefix the growth loop last held.
		prefix = ipv4.NewPrefix(e.pivot, 32)
	}
	s := &Subnet{
		Prefix:      prefix,
		Pivot:       e.pivot,
		PivotDist:   e.pd,
		ContraPivot: e.contra,
		Ingress:     e.ingress,
		TraceEntry:  e.traceEntry,
		OnPath:      e.onPath,
		Stop:        e.stop,
	}
	for a := range e.members {
		if prefix.Contains(a) {
			s.Addrs = append(s.Addrs, a)
		}
	}
	sortAddrs(s.Addrs)
	if !prefix.Contains(e.contra) {
		s.ContraPivot = ipv4.Zero
	}
	return s, nil
}

// grow is the paper's bottom-up Algorithm 1: form temporary subnets of
// decreasing prefix length around the pivot, probing every new candidate.
func (e *explorer) grow() (ipv4.Prefix, error) {
	for m := 31; m >= e.cfg.MinPrefixBits; m-- {
		sp := ipv4.NewPrefix(e.pivot, m)
		shrunk := false
		var walkErr error
		sp.Addrs(func(a ipv4.Addr) bool {
			if e.probed[a] {
				return true
			}
			e.probed[a] = true
			v, err := e.examine(a)
			if err != nil {
				walkErr = err
				return false
			}
			switch v {
			case verdictMember:
				e.members[a] = true
			case verdictShrink:
				shrunk = true
				return false
			}
			return true
		})
		if walkErr != nil {
			return ipv4.Prefix{}, walkErr
		}
		if shrunk {
			// H1 prefix reduction: revert to the last known intact prefix
			// and drop every member that only conformed to the broken one.
			return e.shrinkTo(m + 1), nil
		}
		// Algorithm 1 lines 19–21: stop growing unless more than half of the
		// current level is utilized.
		if !e.cfg.DisableHalfFillStop && m <= 29 && uint64(len(e.members)) <= sp.Size()/2 {
			e.stop = StopHalfFill
			return e.coveringPrefix(), nil
		}
	}
	e.stop = StopMinPrefix
	return e.coveringPrefix(), nil
}

// growTopDown is the §3.8 strawman used by the ablation benchmarks: assume
// the largest allowed subnet outright and probe every address in it,
// shrinking toward the pivot whenever a heuristic fires.
func (e *explorer) growTopDown() (ipv4.Prefix, error) {
	prefix := ipv4.NewPrefix(e.pivot, e.cfg.MinPrefixBits)
	for {
		restart := false
		var walkErr error
		prefix.Addrs(func(a ipv4.Addr) bool {
			if e.probed[a] {
				return true
			}
			e.probed[a] = true
			v, err := e.examine(a)
			if err != nil {
				walkErr = err
				return false
			}
			switch v {
			case verdictMember:
				e.members[a] = true
			case verdictShrink:
				// Shrink just enough to exclude the offender.
				bits := ipv4.CommonPrefixLen(e.pivot, a) + 1
				if bits > 32 {
					bits = 32
				}
				prefix = e.shrinkTo(bits)
				e.stop = StopNone
				restart = true
				return false
			}
			return true
		})
		if walkErr != nil {
			return ipv4.Prefix{}, walkErr
		}
		if !restart {
			if e.stop == StopNone {
				e.stop = StopMinPrefix
			}
			return prefix, nil
		}
	}
}

// shrinkTo reverts the subnet to /bits around the pivot, dropping members
// outside it (heuristic H1).
func (e *explorer) shrinkTo(bits int) ipv4.Prefix {
	if bits > 32 {
		bits = 32
	}
	p := ipv4.NewPrefix(e.pivot, bits)
	for a := range e.members {
		if !p.Contains(a) {
			delete(e.members, a)
		}
	}
	if !p.Contains(e.contra) {
		e.contra = ipv4.Zero
	}
	return p
}

// coveringPrefix returns the minimal prefix containing every member — the
// observed subnet when growth ends without a shrink (half-fill stop or the
// MinPrefixBits floor). Growing first and covering afterwards is what makes
// sparsely utilized subnets come out underestimated rather than inflated
// (§3.8, §4.1.1).
func (e *explorer) coveringPrefix() ipv4.Prefix {
	bits := 32
	for a := range e.members {
		if l := ipv4.CommonPrefixLen(e.pivot, a); l < bits {
			bits = l
		}
	}
	return ipv4.NewPrefix(e.pivot, bits)
}

// reduceBoundary applies heuristic H9: a collected subnet shorter than /31
// must not contain its network or broadcast address; while it does, split it
// and keep the half holding the pivot.
func (e *explorer) reduceBoundary(p ipv4.Prefix) ipv4.Prefix {
	for p.Bits() < 31 {
		hasBoundary := false
		for a := range e.members {
			if p.Contains(a) && p.IsBoundary(a) {
				hasBoundary = true
				break
			}
		}
		if !hasBoundary {
			break
		}
		lo, hi := p.Halves()
		if lo.Contains(e.pivot) {
			p = lo
		} else {
			p = hi
		}
		for a := range e.members {
			if !p.Contains(a) {
				delete(e.members, a)
			}
		}
		if !p.Contains(e.contra) {
			e.contra = ipv4.Zero
		}
	}
	return p
}

// examine runs heuristics H2–H8 on candidate address a.
func (e *explorer) examine(a ipv4.Addr) (examineVerdict, error) {
	if e.quarantined != nil && e.quarantined(a) {
		// Quarantined addresses are never re-admitted as members.
		return verdictSkip, nil
	}
	// H2 upper-bound subnet contiguity: a must be alive at the pivot's
	// distance. A TTL expiry means a lies farther than the subnet.
	r, err := e.pr.Probe(a, e.pd)
	if err != nil {
		return verdictSkip, err
	}
	switch {
	case r.Expired():
		e.stop = StopH2
		return verdictShrink, nil
	case !r.Alive():
		if a == e.pivot.Mate31() {
			// Remember the dead /31 mate: H5's shortcut then transfers to
			// the /30 mate.
			e.mate31Dead = true
		}
		return verdictSkip, nil
	}

	// H5 mate-31 subnet contiguity: the pivot's own /31 mate (or its /30
	// mate when the /31 mate is unused) is on the subnet by hierarchical
	// addressing — no further tests.
	if a == e.pivot.Mate31() {
		return verdictMember, nil
	}
	if a == e.pivot.Mate30() && e.mate31Dead {
		return verdictMember, nil
	}

	// H3/H4: contra-pivot detection, one probe at jh-1 shared with H6.
	if e.pd-1 >= 1 {
		r1, err := e.pr.Probe(a, e.pd-1)
		if err != nil {
			return verdictSkip, err
		}
		if r1.Alive() {
			// Alive one hop closer: contra-pivot candidate (H3).
			if !e.contra.IsZero() {
				e.stop = StopH3 // second contra-pivot: ingress fringe
				return verdictShrink, nil
			}
			// H4 lower-bound subnet contiguity: a genuine contra-pivot is
			// exactly one hop closer, not two.
			if e.pd-2 >= 1 {
				r2, err := e.pr.Probe(a, e.pd-2)
				if err != nil {
					return verdictSkip, err
				}
				if r2.Alive() {
					e.stop = StopH4
					return verdictShrink, nil
				}
			}
			e.contra = a
			return verdictMember, nil
		}
		// H6 fixed entry points: probes to subnet members must enter through
		// the known ingress router(s).
		if r1.Expired() && !e.entryOK(r1.From) {
			e.stop = StopH6
			return verdictShrink, nil
		}
	}

	// H7 upper-bound router contiguity: if a's mate lies one hop beyond the
	// subnet, a belongs to a router one hop past the ingress but on a
	// different subnet (far fringe).
	if v, err := e.mateCheck(a, e.pd, true); err != nil || v == verdictShrink {
		if v == verdictShrink {
			e.stop = StopH7
		}
		return v, err
	}

	// H8 lower-bound router contiguity: if a's mate is alive one hop closer
	// — and is not the contra-pivot — a sits on a subnet hanging off the
	// ingress router (close fringe).
	if e.pd-1 >= 1 {
		if v, err := e.mateCheck(a, e.pd-1, false); err != nil || v == verdictShrink {
			if v == verdictShrink {
				e.stop = StopH8
			}
			return v, err
		}
	}

	return verdictMember, nil
}

// mateCheck implements the shared probing pattern of H7 and H8: probe the /31
// mate of a at the given TTL, falling back to the /30 mate when the /31 mate
// yields no response or host-unreachable. For H7 (expectExceeded) the fatal
// signal is a TTL expiry; for H8 it is an alive reply.
func (e *explorer) mateCheck(a ipv4.Addr, ttl int, expectExceeded bool) (examineVerdict, error) {
	for _, mate := range []ipv4.Addr{a.Mate31(), a.Mate30()} {
		if mate == e.pivot || e.members[mate] {
			// The mate is already known to be on the subnet: a passes.
			return verdictSkip, nil
		}
		if !expectExceeded && mate == e.contra {
			// H8 explicitly excludes the contra-pivot: it IS on the ingress
			// router and on the subnet.
			return verdictSkip, nil
		}
		r, err := e.pr.Probe(mate, ttl)
		if err != nil {
			return verdictSkip, err
		}
		if expectExceeded {
			if r.Expired() {
				return verdictShrink, nil
			}
			if r.Alive() {
				return verdictSkip, nil // mate at subnet distance: consistent
			}
		} else {
			if r.Alive() {
				return verdictShrink, nil
			}
			if r.Expired() {
				return verdictSkip, nil // mate farther back: consistent
			}
		}
		// No response or host-unreachable: fall through to the /30 mate.
	}
	return verdictSkip, nil
}

// entryOK implements H6's comparison of an observed entry router k with the
// two known entry points: the positioning ingress i and the trace-collection
// predecessor u. Per §3.7, "tracenet always attempts to obtain at most two
// ingress routers to the subnet being investigated (one is in trace
// collection mode and the other is in subnet positioning phase) and applies
// the test H6 against both routers" — u is accepted unconditionally, which
// is what makes H6 tolerant of path fluctuations that alternate between two
// entry branches. Anonymous entries act as wildcards ("the rule is valid in
// case i and/or u are anonymous").
func (e *explorer) entryOK(k ipv4.Addr) bool {
	if e.ingress.IsZero() || k.IsZero() {
		return true
	}
	if k == e.ingress {
		return true
	}
	if !e.cfg.SingleIngress {
		if e.traceEntry.IsZero() || k == e.traceEntry {
			return true
		}
	}
	return false
}
