package core

import (
	"testing"

	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// TestScaleLargeRandomTopology drives a full collection campaign over a
// large random network — several hundred routers and subnets — as a
// performance and robustness guard: the whole campaign must finish within
// the test timeout and keep every structural invariant.
func TestScaleLargeRandomTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test")
	}
	top, targets := topo.Random(topo.RandomSpec{
		Seed:        99,
		Backbone:    60,
		Leaves:      400,
		ExtraLinks:  12,
		LANFraction: 0.3,
	})
	if len(top.Routers) < 400 {
		t.Fatalf("topology too small for a scale test: %d routers", len(top.Routers))
	}
	n := netsim.New(top, netsim.Config{Seed: 99})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := NewSession(pr, Config{})
	collected := 0
	for _, target := range targets {
		res, err := sess.Trace(target)
		if err != nil {
			t.Fatal(err)
		}
		checkResultInvariants(t, 99, res)
		if res.Reached {
			collected++
		}
	}
	if collected < len(targets)*3/4 {
		t.Fatalf("only %d/%d targets reached", collected, len(targets))
	}
	for _, s := range sess.Subnets() {
		checkSubnetInvariants(t, 99, top, s)
	}
	if len(sess.Subnets()) < 100 {
		t.Fatalf("collected only %d subnets from %d targets", len(sess.Subnets()), len(targets))
	}
	t.Logf("scale: %d routers, %d subnets in topology; %d targets, %d subnets collected, %d probes",
		len(top.Routers), len(top.Subnets), len(targets), len(sess.Subnets()), pr.Stats().Sent)
}
