package core

import (
	"errors"

	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
)

// Session collects subnets along paths from one vantage point, accumulating
// results across multiple destinations so that subnets discovered on one
// trace are reused (not re-explored) by later traces.
//
// A session degrades gracefully under network faults: transport errors are
// absorbed as silent probes (never aborting the trace), and subnets whose
// collection observed definite fault evidence are annotated with
// Degraded/Confidence instead of being silently misreported as clean.
// Partially collected sessions can be checkpointed and resumed (see
// Checkpoint).
type Session struct {
	pr  *probe.Prober
	cfg Config

	// collected maps member addresses onto the subnets already grown, for
	// the SkipKnown optimization.
	collected map[ipv4.Addr]*Subnet
	subnets   []*Subnet
	done      []ipv4.Addr
}

// NewSession creates a tracenet session over the given prober.
func NewSession(pr *probe.Prober, cfg Config) *Session {
	return &Session{
		pr:        pr,
		cfg:       cfg.withDefaults(),
		collected: make(map[ipv4.Addr]*Subnet),
	}
}

// Subnets returns every distinct subnet collected so far, in discovery order.
func (s *Session) Subnets() []*Subnet { return s.subnets }

// DegradedSubnets returns the collected subnets flagged as degraded.
func (s *Session) DegradedSubnets() []*Subnet {
	var out []*Subnet
	for _, sub := range s.subnets {
		if sub.Degraded {
			out = append(out, sub)
		}
	}
	return out
}

// Done returns the destinations whose traces ran to completion, in order.
// A checkpointed campaign uses this to skip already-traced targets on
// resume.
func (s *Session) Done() []ipv4.Addr { return s.done }

// StopStats returns how often each rule terminated subnet growth across the
// session — the observability counterpart of §3.5's heuristics: H1 shrinks
// are attributed to the heuristic that fired, the half-fill rule and the
// MinPrefixBits floor appear under their own labels.
func (s *Session) StopStats() map[StopReason]int {
	out := map[StopReason]int{}
	for _, sub := range s.subnets {
		out[sub.Stop]++
	}
	return out
}

// Prober exposes the session's prober (for accounting).
func (s *Session) Prober() *probe.Prober { return s.pr }

// faultDelta snapshots the prober's definite-fault counters so a hop's work
// can be attributed its own fault events.
type faultDelta struct {
	pr     *probe.Prober
	events uint64
}

func (s *Session) faultMark() faultDelta {
	return faultDelta{pr: s.pr, events: s.pr.Stats().FaultEvents()}
}

func (d faultDelta) events2() uint64 { return d.pr.Stats().FaultEvents() - d.events }

// recoverable reports whether err is a fault the session absorbs (treating
// the probe as silent) rather than an abort condition. Budget exhaustion and
// programming errors still propagate.
func recoverable(err error) bool {
	return errors.Is(err, probe.ErrTransport)
}

// Trace runs one tracenet session toward dst: a path trace that grows the
// subnet at every responsive hop. Under network faults the trace never
// aborts: faulty probes read as silence, affected hops and subnets are
// annotated as degraded, and the partial result stays usable.
func (s *Session) Trace(dst ipv4.Addr) (*Result, error) {
	res, err := s.trace(dst)
	if err == nil {
		s.done = append(s.done, dst)
	}
	return res, err
}

func (s *Session) trace(dst ipv4.Addr) (*Result, error) {
	res := &Result{Dst: dst}
	u := ipv4.Zero // interface obtained at the previous hop
	gaps := 0
	seen := map[ipv4.Addr]bool{} // loop guard on trace-collection addresses

	for d := 1; d <= s.cfg.MaxTTL; d++ {
		// Trace collection: one indirect probe at TTL d.
		before := s.pr.Stats().Sent
		fd := s.faultMark()
		recoveredHere := false
		r, err := s.pr.Probe(dst, d)
		if err != nil {
			if !recoverable(err) {
				return res, err
			}
			// Faulty transport: absorb as a silent hop and keep going.
			res.Recovered++
			recoveredHere = true
			r = probe.Result{}
		}
		res.TraceProbes += s.pr.Stats().Sent - before
		hop := Hop{TTL: d, Addr: r.From, Kind: r.Kind, Degraded: fd.events2() > 0 || recoveredHere}

		switch {
		case r.Expired() || r.Alive():
			v := r.From
			if r.Alive() && v != dst {
				// An alive reply from a different address (e.g. a default-
				// interface router answering early) still identifies v.
				v = r.From
			}
			if seen[v] && !r.Alive() {
				// Routing loop: the same interface answered two TTLs.
				res.Hops = append(res.Hops, hop)
				return res, nil
			}
			seen[v] = true
			if err := s.exploreHop(&hop, u, v, d, res); err != nil {
				return res, err
			}
			u = v
			gaps = 0
		case r.Kind == probe.HostUnreachable:
			res.Hops = append(res.Hops, hop)
			return res, nil
		default: // silent hop
			u = ipv4.Zero
			gaps++
			if gaps >= s.cfg.MaxConsecutiveGaps {
				res.Hops = append(res.Hops, hop)
				return res, nil
			}
		}

		res.Hops = append(res.Hops, hop)
		if r.Alive() {
			res.Reached = true
			return res, nil
		}
	}
	return res, nil
}

// exploreHop positions and grows the subnet for the interface v obtained at
// hop d, or reuses a previously collected subnet containing v.
func (s *Session) exploreHop(hop *Hop, u, v ipv4.Addr, d int, res *Result) error {
	if !s.cfg.DisableSkipKnown {
		if known, ok := s.collected[v]; ok {
			hop.Subnet = known
			hop.Revisited = true
			if !containsSubnet(res.Subnets, known) {
				res.Subnets = append(res.Subnets, known)
			}
			return nil
		}
	}

	st0 := s.pr.Stats()
	pos, err := findPosition(s.pr, u, v, d, s.cfg)
	positionCost := s.pr.Stats().Sent - st0.Sent
	res.PositionProbes += positionCost
	if err != nil {
		if recoverable(err) {
			// Positioning died on a faulty transport: record the hop bare
			// and degraded instead of aborting the session.
			res.Recovered++
			hop.Degraded = true
			return nil
		}
		return err
	}
	if !pos.ok {
		return nil // v unpositionable: hop recorded without a subnet
	}

	st1 := s.pr.Stats()
	sub, err := explore(s.pr, pos, u, s.cfg)
	exploreCost := s.pr.Stats().Sent - st1.Sent
	res.ExploreProbes += exploreCost
	if err != nil {
		if recoverable(err) {
			res.Recovered++
			hop.Degraded = true
			return nil
		}
		return err
	}
	sub.Probes = positionCost + exploreCost

	// Degradation annotation: the subnet's own share of answered probes and
	// any definite fault evidence observed while positioning/exploring it.
	st2 := s.pr.Stats()
	answered := st2.Answered - st0.Answered
	silent := st2.Timeouts - st0.Timeouts
	faults := st2.FaultEvents() - st0.FaultEvents()
	if logical := answered + silent + faults; logical > 0 {
		sub.Confidence = float64(answered) / float64(logical)
	} else {
		sub.Confidence = 1
	}
	if faults > 0 {
		sub.Degraded = true
		hop.Degraded = true
	}

	hop.Subnet = sub
	s.subnets = append(s.subnets, sub)
	res.Subnets = append(res.Subnets, sub)
	for _, a := range sub.Addrs {
		if _, dup := s.collected[a]; !dup {
			s.collected[a] = sub
		}
	}
	return nil
}

func containsSubnet(list []*Subnet, s *Subnet) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// Trace is the one-shot convenience wrapper: a fresh session tracing a single
// destination.
func Trace(pr *probe.Prober, dst ipv4.Addr, cfg Config) (*Result, error) {
	return NewSession(pr, cfg).Trace(dst)
}
