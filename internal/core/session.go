package core

import (
	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
)

// Session collects subnets along paths from one vantage point, accumulating
// results across multiple destinations so that subnets discovered on one
// trace are reused (not re-explored) by later traces.
type Session struct {
	pr  *probe.Prober
	cfg Config

	// collected maps member addresses onto the subnets already grown, for
	// the SkipKnown optimization.
	collected map[ipv4.Addr]*Subnet
	subnets   []*Subnet
}

// NewSession creates a tracenet session over the given prober.
func NewSession(pr *probe.Prober, cfg Config) *Session {
	return &Session{
		pr:        pr,
		cfg:       cfg.withDefaults(),
		collected: make(map[ipv4.Addr]*Subnet),
	}
}

// Subnets returns every distinct subnet collected so far, in discovery order.
func (s *Session) Subnets() []*Subnet { return s.subnets }

// StopStats returns how often each rule terminated subnet growth across the
// session — the observability counterpart of §3.5's heuristics: H1 shrinks
// are attributed to the heuristic that fired, the half-fill rule and the
// MinPrefixBits floor appear under their own labels.
func (s *Session) StopStats() map[StopReason]int {
	out := map[StopReason]int{}
	for _, sub := range s.subnets {
		out[sub.Stop]++
	}
	return out
}

// Prober exposes the session's prober (for accounting).
func (s *Session) Prober() *probe.Prober { return s.pr }

// Trace runs one tracenet session toward dst: a path trace that grows the
// subnet at every responsive hop.
func (s *Session) Trace(dst ipv4.Addr) (*Result, error) {
	res := &Result{Dst: dst}
	u := ipv4.Zero // interface obtained at the previous hop
	gaps := 0
	seen := map[ipv4.Addr]bool{} // loop guard on trace-collection addresses

	for d := 1; d <= s.cfg.MaxTTL; d++ {
		// Trace collection: one indirect probe at TTL d.
		before := s.pr.Stats().Sent
		r, err := s.pr.Probe(dst, d)
		if err != nil {
			return res, err
		}
		res.TraceProbes += s.pr.Stats().Sent - before
		hop := Hop{TTL: d, Addr: r.From, Kind: r.Kind}

		switch {
		case r.Expired() || r.Alive():
			v := r.From
			if r.Alive() && v != dst {
				// An alive reply from a different address (e.g. a default-
				// interface router answering early) still identifies v.
				v = r.From
			}
			if seen[v] && !r.Alive() {
				// Routing loop: the same interface answered two TTLs.
				res.Hops = append(res.Hops, hop)
				return res, nil
			}
			seen[v] = true
			if err := s.exploreHop(&hop, u, v, d, res); err != nil {
				return res, err
			}
			u = v
			gaps = 0
		case r.Kind == probe.HostUnreachable:
			res.Hops = append(res.Hops, hop)
			return res, nil
		default: // silent hop
			u = ipv4.Zero
			gaps++
			if gaps >= s.cfg.MaxConsecutiveGaps {
				res.Hops = append(res.Hops, hop)
				return res, nil
			}
		}

		res.Hops = append(res.Hops, hop)
		if r.Alive() {
			res.Reached = true
			return res, nil
		}
	}
	return res, nil
}

// exploreHop positions and grows the subnet for the interface v obtained at
// hop d, or reuses a previously collected subnet containing v.
func (s *Session) exploreHop(hop *Hop, u, v ipv4.Addr, d int, res *Result) error {
	if !s.cfg.DisableSkipKnown {
		if known, ok := s.collected[v]; ok {
			hop.Subnet = known
			hop.Revisited = true
			if !containsSubnet(res.Subnets, known) {
				res.Subnets = append(res.Subnets, known)
			}
			return nil
		}
	}

	before := s.pr.Stats().Sent
	pos, err := findPosition(s.pr, u, v, d, s.cfg)
	positionCost := s.pr.Stats().Sent - before
	res.PositionProbes += positionCost
	if err != nil {
		return err
	}
	if !pos.ok {
		return nil // v unpositionable: hop recorded without a subnet
	}

	before = s.pr.Stats().Sent
	sub, err := explore(s.pr, pos, u, s.cfg)
	exploreCost := s.pr.Stats().Sent - before
	res.ExploreProbes += exploreCost
	if err != nil {
		return err
	}
	sub.Probes = positionCost + exploreCost
	hop.Subnet = sub
	s.subnets = append(s.subnets, sub)
	res.Subnets = append(res.Subnets, sub)
	for _, a := range sub.Addrs {
		if _, dup := s.collected[a]; !dup {
			s.collected[a] = sub
		}
	}
	return nil
}

func containsSubnet(list []*Subnet, s *Subnet) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// Trace is the one-shot convenience wrapper: a fresh session tracing a single
// destination.
func Trace(pr *probe.Prober, dst ipv4.Addr, cfg Config) (*Result, error) {
	return NewSession(pr, cfg).Trace(dst)
}
