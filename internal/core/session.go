package core

import (
	"errors"
	"fmt"
	"strconv"

	"tracenet/internal/ipv4"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
)

// Session collects subnets along paths from one vantage point, accumulating
// results across multiple destinations so that subnets discovered on one
// trace are reused (not re-explored) by later traces.
//
// A session degrades gracefully under network faults: transport errors are
// absorbed as silent probes (never aborting the trace), and subnets whose
// collection observed definite fault evidence are annotated with
// Degraded/Confidence instead of being silently misreported as clean.
// Partially collected sessions can be checkpointed and resumed (see
// Checkpoint).
type Session struct {
	pr  *probe.Prober
	cfg Config

	// collected maps member addresses onto the subnets already grown, for
	// the SkipKnown optimization.
	collected map[ipv4.Addr]*Subnet
	subnets   []*Subnet
	done      []ipv4.Addr

	// quarantined maps addresses with internally inconsistent responses onto
	// the reason they were quarantined (Config.Defend; see defense.go).
	quarantined map[ipv4.Addr]string

	// Telemetry handles, resolved once from the prober's layer and nil-safe,
	// so an uninstrumented session pays only nil checks. Phase accounting
	// (trace/position/explore probes) comes from probe.Scope deltas, which
	// also ride on the spans as scoped counters.
	tel             *telemetry.Telemetry
	cTraces         *telemetry.Counter
	cHops           *telemetry.Counter
	cSubnets        *telemetry.Counter
	cRevisits       *telemetry.Counter
	cDegraded       *telemetry.Counter
	cRecovered      *telemetry.Counter
	cTraceProbes    *telemetry.Counter
	cPositionProbes *telemetry.Counter
	cExploreProbes  *telemetry.Counter
	cDefenseProbes  *telemetry.Counter
	cShared         *telemetry.Counter
	cQuarantined    *telemetry.Counter
	cCrossChecks    *telemetry.Counter
	cDemotions      *telemetry.Counter
	hSubnetBits     *telemetry.Histogram
	hSubnetProbes   *telemetry.Histogram
}

// SubnetPrefixBuckets are the subnet-size histogram bounds in prefix bits:
// /31 point-to-point links dominate core topologies, so the interesting mass
// sits at the top of the range.
var SubnetPrefixBuckets = []uint64{24, 26, 28, 29, 30, 31, 32}

// SubnetProbeBuckets bound the per-subnet probe-cost histogram (§3.6).
var SubnetProbeBuckets = []uint64{4, 8, 16, 32, 64, 128, 256, 512}

// NewSession creates a tracenet session over the given prober, inheriting
// the prober's telemetry layer (if any).
func NewSession(pr *probe.Prober, cfg Config) *Session {
	s := &Session{
		pr:          pr,
		cfg:         cfg.withDefaults(),
		collected:   make(map[ipv4.Addr]*Subnet),
		quarantined: make(map[ipv4.Addr]string),
	}
	s.bindTelemetry()
	return s
}

// bindTelemetry resolves the session's metric handles from the prober's
// telemetry layer. All handles are inert when the prober runs bare.
func (s *Session) bindTelemetry() {
	tel := s.pr.Telemetry()
	s.tel = tel
	s.cTraces = tel.Counter("tracenet_session_traces_total")
	s.cHops = tel.Counter("tracenet_session_hops_total")
	s.cSubnets = tel.Counter("tracenet_session_subnets_total")
	s.cRevisits = tel.Counter("tracenet_session_revisits_total")
	s.cDegraded = tel.Counter("tracenet_session_degraded_subnets_total")
	s.cRecovered = tel.Counter("tracenet_session_recovered_errors_total")
	s.cTraceProbes = tel.Counter("tracenet_session_probes_total", "phase", "trace")
	s.cPositionProbes = tel.Counter("tracenet_session_probes_total", "phase", "position")
	s.cExploreProbes = tel.Counter("tracenet_session_probes_total", "phase", "explore")
	s.cDefenseProbes = tel.Counter("tracenet_session_probes_total", "phase", "defense")
	s.cShared = tel.Counter("tracenet_session_shared_hits_total")
	s.cQuarantined = tel.Counter("tracenet_defense_quarantined_total")
	s.cCrossChecks = tel.Counter("tracenet_defense_crosschecks_total")
	s.cDemotions = tel.Counter("tracenet_defense_demotions_total")
	s.hSubnetBits = tel.Histogram("tracenet_session_subnet_prefix_bits", SubnetPrefixBuckets)
	s.hSubnetProbes = tel.Histogram("tracenet_session_subnet_probes", SubnetProbeBuckets)
}

// Subnets returns every distinct subnet collected so far, in discovery order.
func (s *Session) Subnets() []*Subnet { return s.subnets }

// DegradedSubnets returns the collected subnets flagged as degraded.
func (s *Session) DegradedSubnets() []*Subnet {
	var out []*Subnet
	for _, sub := range s.subnets {
		if sub.Degraded {
			out = append(out, sub)
		}
	}
	return out
}

// Done returns the destinations whose traces ran to completion, in order.
// A checkpointed campaign uses this to skip already-traced targets on
// resume.
func (s *Session) Done() []ipv4.Addr { return s.done }

// StopStats returns how often each rule terminated subnet growth across the
// session — the observability counterpart of §3.5's heuristics: H1 shrinks
// are attributed to the heuristic that fired, the half-fill rule and the
// MinPrefixBits floor appear under their own labels.
func (s *Session) StopStats() map[StopReason]int {
	out := map[StopReason]int{}
	for _, sub := range s.subnets {
		out[sub.Stop]++
	}
	return out
}

// StopStatsOrdered returns the stop-reason histogram in the canonical
// deterministic order (see OrderedStopCounts).
func (s *Session) StopStatsOrdered() []StopCount {
	return OrderedStopCounts(s.StopStats())
}

// Prober exposes the session's prober (for accounting).
func (s *Session) Prober() *probe.Prober { return s.pr }

// recoverable reports whether err is a fault the session absorbs (treating
// the probe as silent) rather than an abort condition. Budget exhaustion and
// programming errors still propagate.
func recoverable(err error) bool {
	return errors.Is(err, probe.ErrTransport)
}

// Trace runs one tracenet session toward dst: a path trace that grows the
// subnet at every responsive hop. Under network faults the trace never
// aborts: faulty probes read as silence, affected hops and subnets are
// annotated as degraded, and the partial result stays usable.
func (s *Session) Trace(dst ipv4.Addr) (*Result, error) {
	s.cTraces.Inc()
	span := s.tel.StartSpan("trace", "dst", dst.String())
	scope := s.pr.Scope()
	res, err := s.trace(dst)
	scope.CountInto(span)
	span.End()
	if err == nil {
		// A trace the breaker truncated ended on manufactured silence, not
		// an observed outcome: leave it out of the done list so a resumed
		// session (whose breaker starts closed) retries it.
		if !res.Reached && scope.Delta().BreakerSkips > 0 {
			res.BreakerLimited = true
		} else {
			s.done = append(s.done, dst)
		}
	}
	return res, err
}

func (s *Session) trace(dst ipv4.Addr) (*Result, error) {
	res := &Result{Dst: dst}
	u := ipv4.Zero // interface obtained at the previous hop
	gaps := 0
	seen := map[ipv4.Addr]bool{} // loop guard on trace-collection addresses

	for d := 1; d <= s.cfg.MaxTTL; d++ {
		hopScope := s.pr.Scope()
		hopSpan := s.tel.StartSpan("hop", "ttl", strconv.Itoa(d))
		stop, err := s.traceHop(dst, d, &u, &gaps, seen, res)
		s.cHops.Inc()
		hopScope.CountInto(hopSpan)
		hopSpan.End()
		if err != nil || stop {
			return res, err
		}
	}
	return res, nil
}

// traceHop runs one TTL of the trace: the trace-collection probe plus, when
// it identified an interface, the subnet exploration at that hop. It reports
// stop = true when the trace is complete (destination reached, unreachable,
// loop, or gap limit).
func (s *Session) traceHop(dst ipv4.Addr, d int, u *ipv4.Addr, gaps *int,
	seen map[ipv4.Addr]bool, res *Result) (stop bool, err error) {
	// Trace collection: one indirect probe at TTL d.
	tc := s.pr.Scope()
	recoveredHere := false
	r, err := s.pr.Probe(dst, d)
	if err != nil {
		if !recoverable(err) {
			return true, err
		}
		// Faulty transport: absorb as a silent hop and keep going.
		res.Recovered++
		s.cRecovered.Inc()
		recoveredHere = true
		r = probe.Result{}
	}
	tcd := tc.Delta()
	res.TraceProbes += tcd.Sent
	s.cTraceProbes.Add(tcd.Sent)
	degraded := tcd.FaultEvents() > 0 || recoveredHere
	if s.cfg.Defend {
		ds := s.pr.Scope()
		var flagged bool
		r, flagged = s.defendHop(dst, d, r)
		dd := ds.Delta().Sent
		res.DefenseProbes += dd
		s.cDefenseProbes.Add(dd)
		degraded = degraded || flagged
	}
	hop := Hop{TTL: d, Addr: r.From, Kind: r.Kind, Degraded: degraded}

	switch {
	case r.Expired() || r.Alive():
		v := r.From
		if r.Alive() && v != dst {
			// An alive reply from a different address (e.g. a default-
			// interface router answering early) still identifies v.
			v = r.From
		}
		if seen[v] && !r.Alive() {
			if s.cfg.Defend {
				// The same source answering at two TTLs is the alias-confuse
				// symptom (or a genuine routing loop — either way the address
				// cannot pin a hop): quarantine it and keep walking with an
				// anonymous hop instead of declaring the trace finished.
				s.quarantineAddr(v, fmt.Sprintf("answered at multiple TTLs (latest %d)", d))
				hop.Addr = ipv4.Zero
				hop.Kind = probe.None
				hop.Degraded = true
				res.Hops = append(res.Hops, hop)
				*u = ipv4.Zero
				*gaps = *gaps + 1
				return *gaps >= s.cfg.MaxConsecutiveGaps, nil
			}
			// Routing loop: the same interface answered two TTLs.
			res.Hops = append(res.Hops, hop)
			return true, nil
		}
		seen[v] = true
		if err := s.exploreHop(&hop, *u, v, d, res); err != nil {
			return true, err
		}
		*u = v
		*gaps = 0
	case r.Kind == probe.HostUnreachable:
		res.Hops = append(res.Hops, hop)
		return true, nil
	default: // silent hop
		*u = ipv4.Zero
		*gaps = *gaps + 1
		if *gaps >= s.cfg.MaxConsecutiveGaps {
			res.Hops = append(res.Hops, hop)
			return true, nil
		}
	}

	res.Hops = append(res.Hops, hop)
	if r.Alive() {
		res.Reached = true
		return true, nil
	}
	return false, nil
}

// exploreHop positions and grows the subnet for the interface v obtained at
// hop d, reuses a previously collected subnet containing v, or — in a
// campaign — adopts the growth another session already ran for this hop
// context through the shared subnet cache.
func (s *Session) exploreHop(hop *Hop, u, v ipv4.Addr, d int, res *Result) error {
	if s.cfg.Defend && s.isQuarantined(v) {
		// A quarantined address may not seed a subnet: the hop stays bare.
		hop.Degraded = true
		return nil
	}
	if !s.cfg.DisableSkipKnown {
		if known, ok := s.collected[v]; ok {
			hop.Subnet = known
			hop.Revisited = true
			s.cRevisits.Inc()
			if !containsSubnet(res.Subnets, known) {
				res.Subnets = append(res.Subnets, known)
			}
			return nil
		}
	}

	var err error
	if s.cfg.Shared != nil {
		// Clear the prober's response cache so an owned growth's wire cost is
		// a pure function of the hop context (v, u, d) — independent of what
		// this session probed before — which keeps campaign probe totals
		// schedule-independent (see SharedSubnetCache).
		s.pr.ClearCache()
		var g Growth
		var hit bool
		g, hit, err = s.cfg.Shared.ExploreHop(v, u, d, func() (Growth, error) {
			return s.growSubnet(hop, u, v, d, res)
		})
		if err == nil && hit {
			s.adoptShared(hop, g.Subnet, res)
		}
	} else {
		_, err = s.growSubnet(hop, u, v, d, res)
	}
	if err != nil {
		if recoverable(err) {
			// Growth died on a faulty transport: record the hop bare and
			// degraded instead of aborting the session. Waiters on a shared
			// growth absorb the owner's error the same way.
			res.Recovered++
			s.cRecovered.Inc()
			hop.Degraded = true
			return nil
		}
		return err
	}
	return nil
}

// growSubnet runs the position and explore phases for pivot v at hop d and,
// on success, registers the grown subnet with the session. Errors propagate
// raw — the caller decides whether they are absorbable — so a shared cache
// never memoizes a faulted growth. A nil-Subnet Growth means v was
// unpositionable (the hop stays bare, and that outcome is memoizable).
func (s *Session) growSubnet(hop *Hop, u, v ipv4.Addr, d int, res *Result) (Growth, error) {
	// One scope brackets both phases: its delta is the subnet's own share of
	// answered/silent/faulted probes, from which Confidence derives.
	work := s.pr.Scope()

	ps := s.pr.Scope()
	posSpan := s.tel.StartSpan("position", "pivot", v.String())
	pos, err := findPosition(s.pr, u, v, d, s.cfg)
	ps.CountInto(posSpan)
	posSpan.End()
	positionCost := ps.Delta().Sent
	res.PositionProbes += positionCost
	s.cPositionProbes.Add(positionCost)
	if err != nil {
		return Growth{Cost: positionCost}, err
	}
	if !pos.ok {
		// v unpositionable: hop recorded without a subnet.
		return Growth{Cost: positionCost}, nil
	}
	if s.cfg.Defend && s.cfg.Shared == nil && s.isQuarantined(pos.pivot) {
		// Positioning may move the pivot off the hop address (onto the
		// destination's /31 mate, say); a quarantined pivot may not seed a
		// subnet any more than a quarantined hop address — it would enter
		// the membership unexamined.
		hop.Degraded = true
		return Growth{Cost: positionCost}, nil
	}

	var quar func(ipv4.Addr) bool
	if s.cfg.Defend && s.cfg.Shared == nil {
		// Shared growths must stay pure functions of their hop context, so
		// the session-global quarantine set never gates their candidates.
		quar = s.isQuarantined
	}
	es := s.pr.Scope()
	expSpan := s.tel.StartSpan("explore", "pivot", v.String())
	sub, err := explore(s.pr, pos, u, s.cfg, quar)
	es.CountInto(expSpan)
	expSpan.End()
	exploreCost := es.Delta().Sent
	res.ExploreProbes += exploreCost
	s.cExploreProbes.Add(exploreCost)
	if err != nil {
		return Growth{Cost: positionCost + exploreCost}, err
	}
	sub.Probes = positionCost + exploreCost

	// Degradation annotation: the subnet's own share of answered probes and
	// any definite fault evidence observed while positioning/exploring it.
	wd := work.Delta()
	answered := wd.Answered
	silent := wd.Timeouts
	faults := wd.FaultEvents()
	if logical := answered + silent + faults; logical > 0 {
		sub.Confidence = float64(answered) / float64(logical)
	} else {
		sub.Confidence = 1
	}
	if faults > 0 {
		sub.Degraded = true
		hop.Degraded = true
	}

	if s.cfg.Defend {
		// Cross-validate the membership from a second TTL position before the
		// subnet is published (DESIGN.md §11); runs inside the owned growth so
		// a shared cache memoizes the defended subnet.
		ds := s.pr.Scope()
		defErr := s.defendSubnet(sub)
		dd := ds.Delta().Sent
		res.DefenseProbes += dd
		s.cDefenseProbes.Add(dd)
		sub.Probes += dd
		if defErr != nil {
			return Growth{Cost: positionCost + exploreCost + dd}, defErr
		}
		if sub.Degraded {
			hop.Degraded = true
		}
	}

	hop.Subnet = sub
	s.subnets = append(s.subnets, sub)
	s.cSubnets.Inc()
	s.hSubnetBits.Observe(uint64(sub.Prefix.Bits()))
	s.hSubnetProbes.Observe(sub.Probes)
	if sub.Degraded {
		s.cDegraded.Inc()
		// A degraded subnet is the session-level degradation signal: dump
		// the probe history that led to it while the flight recorder still
		// holds it.
		s.tel.Incident(fmt.Sprintf("subnet-degraded %v conf=%.2f", sub.Prefix, sub.Confidence))
	}
	res.Subnets = append(res.Subnets, sub)
	for _, a := range sub.Addrs {
		if _, dup := s.collected[a]; !dup {
			s.collected[a] = sub
		}
	}
	return Growth{Subnet: sub, Cost: sub.Probes}, nil
}

// adoptShared installs a subnet grown by another session into this trace: the
// hop points at the shared subnet, the result lists it once, and its members
// join the session's SkipKnown index so later hops of this trace reuse it
// without consulting the cache again. No packets were spent here; a nil sub
// means the context was memoized as unpositionable and the hop stays bare.
func (s *Session) adoptShared(hop *Hop, sub *Subnet, res *Result) {
	hop.Shared = true
	s.cShared.Inc()
	if sub == nil {
		return
	}
	hop.Subnet = sub
	if !containsSubnet(res.Subnets, sub) {
		res.Subnets = append(res.Subnets, sub)
	}
	for _, a := range sub.Addrs {
		if _, dup := s.collected[a]; !dup {
			s.collected[a] = sub
		}
	}
}

func containsSubnet(list []*Subnet, s *Subnet) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

// Trace is the one-shot convenience wrapper: a fresh session tracing a single
// destination.
func Trace(pr *probe.Prober, dst ipv4.Addr, cfg Config) (*Result, error) {
	return NewSession(pr, cfg).Trace(dst)
}
