package core_test

import (
	"strings"
	"testing"

	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topo"
)

// TestRestoreConfidenceNormalization pins the Restore contract on the
// confidence annotation: the field is omitempty, so legacy checkpoints (and
// zero-valued blobs) decode as 0 — Restore must normalize that to 1 rather
// than hand back a subnet violating the documented (0,1] range, while real
// degraded confidences survive intact and out-of-range values are rejected
// as corruption.
func TestRestoreConfidenceNormalization(t *testing.T) {
	base := core.CheckpointSubnet{
		Prefix:    "10.0.0.0/31",
		Addrs:     []string{"10.0.0.0", "10.0.0.1"},
		Pivot:     "10.0.0.1",
		PivotDist: 2,
	}

	t.Run("absent defaults to one", func(t *testing.T) {
		sub, err := base.Restore()
		if err != nil {
			t.Fatal(err)
		}
		if sub.Confidence != 1 {
			t.Fatalf("restored confidence %v, want 1 (absent field means fully answered)", sub.Confidence)
		}
	})

	t.Run("degraded annotation survives", func(t *testing.T) {
		cs := base
		cs.Confidence = 0.42
		cs.Degraded = true
		sub, err := cs.Restore()
		if err != nil {
			t.Fatal(err)
		}
		if sub.Confidence != 0.42 || !sub.Degraded {
			t.Fatalf("restored confidence=%v degraded=%v, want 0.42 true", sub.Confidence, sub.Degraded)
		}
	})

	t.Run("out of range rejected", func(t *testing.T) {
		for _, bad := range []float64{-0.1, 1.5} {
			cs := base
			cs.Confidence = bad
			if _, err := cs.Restore(); err == nil {
				t.Errorf("confidence %v restored without error", bad)
			} else if !strings.Contains(err.Error(), "outside (0,1]") {
				t.Errorf("confidence %v: unexpected error %v", bad, err)
			}
		}
	})
}

// TestRestoreLegacyCheckpointConfidence round-trips a checkpoint written
// before confidence tracking existed (no confidence keys at all) through
// NewSessionFromCheckpoint: every restored subnet must satisfy the (0,1]
// contract so downstream consumers (reports, eval weighting) never see a
// zero-confidence subnet.
func TestRestoreLegacyCheckpointConfidence(t *testing.T) {
	legacy := strings.NewReader(`{
  "version": 1,
  "subnets": [
    {"prefix": "10.0.1.0/30", "addrs": ["10.0.1.1", "10.0.1.2"], "pivot": "10.0.1.2", "pivot_dist": 1},
    {"prefix": "10.0.2.0/31", "addrs": ["10.0.2.0", "10.0.2.1"], "pivot": "10.0.2.0", "pivot_dist": 2, "confidence": 0.75, "degraded": true}
  ],
  "done": ["10.0.2.1"]
}`)
	cp, err := core.ReadCheckpoint(legacy)
	if err != nil {
		t.Fatal(err)
	}
	n := netsim.New(topo.Figure3(), netsim.Config{})
	port, err := n.PortFor("vantage")
	if err != nil {
		t.Fatal(err)
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess, err := core.NewSessionFromCheckpoint(pr, core.Config{}, cp)
	if err != nil {
		t.Fatal(err)
	}
	subs := sess.Subnets()
	if len(subs) != 2 {
		t.Fatalf("restored %d subnets, want 2", len(subs))
	}
	for _, sub := range subs {
		if sub.Confidence <= 0 || sub.Confidence > 1 {
			t.Errorf("subnet %v restored with confidence %v outside (0,1]", sub.Prefix, sub.Confidence)
		}
	}
	if subs[0].Confidence != 1 || subs[0].Degraded {
		t.Errorf("legacy subnet restored as confidence=%v degraded=%v, want 1 false",
			subs[0].Confidence, subs[0].Degraded)
	}
	if subs[1].Confidence != 0.75 || !subs[1].Degraded {
		t.Errorf("degraded subnet restored as confidence=%v degraded=%v, want 0.75 true",
			subs[1].Confidence, subs[1].Degraded)
	}
	if !sess.IsDone(ipv4.MustParseAddr("10.0.2.1")) {
		t.Error("done list lost in restore")
	}
}
