// Package ipv4 provides compact IPv4 address and prefix arithmetic used
// throughout the tracenet reproduction: 32-bit addresses, CIDR prefixes,
// /31 and /30 mate computation (paper §3.2, "Hierarchical Addressing" and
// "Mate-31 Adjacency"), and boundary-address classification (heuristic H9).
//
// Addresses are plain uint32 values so they can be used as map keys and
// iterated with integer arithmetic; the package is allocation-free on the
// hot paths.
package ipv4

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in host byte order. The zero value is 0.0.0.0,
// which tracenet treats as "no address" (anonymous hop).
type Addr uint32

// Zero is the unspecified address, used for anonymous (non-responding) hops.
const Zero Addr = 0

// MarshalText renders the address in dotted-quad form, so addresses embed in
// JSON artifacts as strings rather than raw uint32s.
func (a Addr) MarshalText() ([]byte, error) { return []byte(a.String()), nil }

// UnmarshalText parses a dotted-quad address.
func (a *Addr) UnmarshalText(text []byte) error {
	parsed, err := ParseAddr(string(text))
	if err != nil {
		return err
	}
	*a = parsed
	return nil
}

// MustParseAddr parses a dotted-quad string and panics on error. It is
// intended for test fixtures and static topology definitions.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// ParseAddr parses a dotted-quad IPv4 address such as "192.0.2.1".
func ParseAddr(s string) (Addr, error) {
	var a uint32
	rest := s
	for i := 0; i < 4; i++ {
		var part string
		if i < 3 {
			dot := strings.IndexByte(rest, '.')
			if dot < 0 {
				return 0, fmt.Errorf("ipv4: invalid address %q: too few octets", s)
			}
			part, rest = rest[:dot], rest[dot+1:]
		} else {
			part = rest
		}
		if part == "" {
			return 0, fmt.Errorf("ipv4: invalid address %q: empty octet", s)
		}
		n, err := strconv.ParseUint(part, 10, 32)
		if err != nil || n > 255 {
			return 0, fmt.Errorf("ipv4: invalid address %q: bad octet %q", s, part)
		}
		if len(part) > 1 && part[0] == '0' {
			return 0, fmt.Errorf("ipv4: invalid address %q: leading zero in octet %q", s, part)
		}
		a = a<<8 | uint32(n)
	}
	return Addr(a), nil
}

// String renders the address in dotted-quad form.
func (a Addr) String() string {
	var b [15]byte
	buf := strconv.AppendUint(b[:0], uint64(a>>24), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>16&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a>>8&0xff), 10)
	buf = append(buf, '.')
	buf = strconv.AppendUint(buf, uint64(a&0xff), 10)
	return string(buf)
}

// AppendText appends the dotted-quad form to dst and returns the extended
// slice — the allocation-free rendering path for hot-path telemetry.
func (a Addr) AppendText(dst []byte) []byte {
	dst = strconv.AppendUint(dst, uint64(a>>24), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(a>>16&0xff), 10)
	dst = append(dst, '.')
	dst = strconv.AppendUint(dst, uint64(a>>8&0xff), 10)
	dst = append(dst, '.')
	return strconv.AppendUint(dst, uint64(a&0xff), 10)
}

// IsZero reports whether a is the unspecified address.
func (a Addr) IsZero() bool { return a == 0 }

// Octets returns the four octets of the address, most significant first.
func (a Addr) Octets() [4]byte {
	return [4]byte{byte(a >> 24), byte(a >> 16), byte(a >> 8), byte(a)}
}

// AddrFromOctets builds an address from four octets, most significant first.
func AddrFromOctets(o [4]byte) Addr {
	return Addr(uint32(o[0])<<24 | uint32(o[1])<<16 | uint32(o[2])<<8 | uint32(o[3]))
}

// Mate31 returns the /31 mate of a: the unique other address sharing a 31-bit
// prefix with a (paper §3.2, Mate-31 Adjacency). Mate31 of x.y.z.2k is
// x.y.z.2k+1 and vice versa.
func (a Addr) Mate31() Addr { return a ^ 1 }

// Mate30 returns the /30 mate of a: the other usable host address of the /30
// point-to-point link containing a. A /30 link x.x.x.0/30 numbers its two
// endpoints .1 (01) and .2 (10), so the mate flips both low bits. The paper
// uses mate30(l) as the alternate candidate when mate31(l) is unused.
func (a Addr) Mate30() Addr { return a ^ 3 }

// CommonPrefixLen returns the number of leading bits a and b share (0..32).
func CommonPrefixLen(a, b Addr) int {
	x := uint32(a ^ b)
	if x == 0 {
		return 32
	}
	n := 0
	for x&0x80000000 == 0 {
		n++
		x <<= 1
	}
	return n
}
