package ipv4

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", 0, true},
		{"255.255.255.255", 0xffffffff, true},
		{"192.0.2.1", 0xc0000201, true},
		{"10.0.0.1", 0x0a000001, true},
		{"1.2.3.4", 0x01020304, true},
		{"1.2.3", 0, false},
		{"1.2.3.4.5", 0, false},
		{"256.0.0.1", 0, false},
		{"1.2.3.-4", 0, false},
		{"a.b.c.d", 0, false},
		{"", 0, false},
		{"1..2.3", 0, false},
		{"01.2.3.4", 0, false},
		{"1.2.3.04", 0, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if c.ok && err != nil {
			t.Errorf("ParseAddr(%q): unexpected error %v", c.in, err)
			continue
		}
		if !c.ok {
			if err == nil {
				t.Errorf("ParseAddr(%q): want error, got %v", c.in, got)
			}
			continue
		}
		if got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		back, err := ParseAddr(addr.String())
		return err == nil && back == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrOctetsRoundTrip(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		return AddrFromOctets(addr.Octets()) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMate31(t *testing.T) {
	a := MustParseAddr("198.51.100.4")
	b := MustParseAddr("198.51.100.5")
	if a.Mate31() != b || b.Mate31() != a {
		t.Fatalf("mate31 of %v/%v wrong: %v %v", a, b, a.Mate31(), b.Mate31())
	}
}

func TestMate31Involution(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		m := addr.Mate31()
		return m != addr && m.Mate31() == addr && CommonPrefixLen(addr, m) == 31
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMate30Involution(t *testing.T) {
	f := func(a uint32) bool {
		addr := Addr(a)
		m := addr.Mate30()
		// Mate30 pairs the two usable hosts of a /30: shares the /30, is not
		// the /31 mate, and is an involution.
		return m != addr && m != addr.Mate31() && m.Mate30() == addr &&
			NewPrefix(addr, 30).Contains(m)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMate30UsableHostPairing(t *testing.T) {
	// In 10.0.0.0/30 the usable hosts .1 and .2 must be each other's mates.
	a, b := MustParseAddr("10.0.0.1"), MustParseAddr("10.0.0.2")
	if a.Mate30() != b || b.Mate30() != a {
		t.Fatalf("mate30 pairing: %v <-> %v", a.Mate30(), b.Mate30())
	}
}

func TestCommonPrefixLen(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"10.0.0.0", "10.0.0.0", 32},
		{"10.0.0.0", "10.0.0.1", 31},
		{"10.0.0.0", "10.0.0.2", 30},
		{"10.0.0.0", "10.0.0.255", 24},
		{"0.0.0.0", "128.0.0.0", 0},
		{"10.0.0.0", "10.0.128.0", 16},
	}
	for _, c := range cases {
		got := CommonPrefixLen(MustParseAddr(c.a), MustParseAddr(c.b))
		if got != c.want {
			t.Errorf("CommonPrefixLen(%s, %s) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestIsZero(t *testing.T) {
	if !Zero.IsZero() {
		t.Error("Zero.IsZero() = false")
	}
	if MustParseAddr("0.0.0.1").IsZero() {
		t.Error("0.0.0.1 reported zero")
	}
}

func TestMustParseAddrPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseAddr on invalid input did not panic")
		}
	}()
	MustParseAddr("not-an-address")
}
