package ipv4

import (
	"testing"
	"testing/quick"
)

func TestParsePrefix(t *testing.T) {
	cases := []struct {
		in   string
		want string
		ok   bool
	}{
		{"198.51.100.0/30", "198.51.100.0/30", true},
		{"198.51.100.7/30", "198.51.100.4/30", true}, // canonicalized
		{"10.0.0.0/8", "10.0.0.0/8", true},
		{"10.1.2.3/0", "0.0.0.0/0", true},
		{"10.1.2.3/32", "10.1.2.3/32", true},
		{"10.0.0.0/33", "", false},
		{"10.0.0.0/-1", "", false},
		{"10.0.0.0", "", false},
		{"bad/24", "", false},
		{"10.0.0.0/x", "", false},
	}
	for _, c := range cases {
		got, err := ParsePrefix(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParsePrefix(%q): ok=%v err=%v", c.in, c.ok, err)
			continue
		}
		if c.ok && got.String() != c.want {
			t.Errorf("ParsePrefix(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestPrefixCanonical(t *testing.T) {
	// Two prefixes covering the same range must compare equal (map-key use).
	a := NewPrefix(MustParseAddr("10.0.0.7"), 29)
	b := NewPrefix(MustParseAddr("10.0.0.1"), 29)
	if a != b {
		t.Fatalf("canonical prefixes differ: %v vs %v", a, b)
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("198.51.100.8/29")
	for a := MustParseAddr("198.51.100.8"); a <= MustParseAddr("198.51.100.15"); a++ {
		if !p.Contains(a) {
			t.Errorf("%v should contain %v", p, a)
		}
	}
	if p.Contains(MustParseAddr("198.51.100.7")) || p.Contains(MustParseAddr("198.51.100.16")) {
		t.Errorf("%v contains addresses outside its range", p)
	}
}

func TestPrefixContainsProperty(t *testing.T) {
	f := func(a uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		p := NewPrefix(Addr(a), bits)
		if !p.Contains(Addr(a)) {
			return false
		}
		// Every address in the range must be contained; first/last suffice as
		// the mask test is monotone over the range.
		return p.Contains(p.First()) && p.Contains(p.Last())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixSize(t *testing.T) {
	cases := []struct {
		bits int
		want uint64
	}{{32, 1}, {31, 2}, {30, 4}, {29, 8}, {24, 256}, {0, 1 << 32}}
	for _, c := range cases {
		p := NewPrefix(0, c.bits)
		if p.Size() != c.want {
			t.Errorf("/%d size = %d, want %d", c.bits, p.Size(), c.want)
		}
	}
}

func TestHostCount(t *testing.T) {
	if got := MustParsePrefix("10.0.0.0/31").HostCount(); got != 2 {
		t.Errorf("/31 host count = %d, want 2", got)
	}
	if got := MustParsePrefix("10.0.0.0/30").HostCount(); got != 2 {
		t.Errorf("/30 host count = %d, want 2", got)
	}
	if got := MustParsePrefix("10.0.0.0/24").HostCount(); got != 254 {
		t.Errorf("/24 host count = %d, want 254", got)
	}
}

func TestBoundary(t *testing.T) {
	p := MustParsePrefix("10.0.0.0/29")
	if !p.IsBoundary(MustParseAddr("10.0.0.0")) {
		t.Error("network address not flagged as boundary")
	}
	if !p.IsBoundary(MustParseAddr("10.0.0.7")) {
		t.Error("broadcast address not flagged as boundary")
	}
	if p.IsBoundary(MustParseAddr("10.0.0.3")) {
		t.Error("interior address flagged as boundary")
	}
	// H9: /31 subnets have no boundary addresses.
	p31 := MustParsePrefix("10.0.0.0/31")
	if p31.IsBoundary(MustParseAddr("10.0.0.0")) || p31.IsBoundary(MustParseAddr("10.0.0.1")) {
		t.Error("/31 must have no boundary addresses")
	}
}

func TestParentAndHalves(t *testing.T) {
	p := MustParsePrefix("10.0.0.4/30")
	if got := p.Parent(); got != MustParsePrefix("10.0.0.0/29") {
		t.Errorf("parent = %v", got)
	}
	lo, hi := MustParsePrefix("10.0.0.0/29").Halves()
	if lo != MustParsePrefix("10.0.0.0/30") || hi != MustParsePrefix("10.0.0.4/30") {
		t.Errorf("halves = %v, %v", lo, hi)
	}
	if got := NewPrefix(0, 0).Parent(); got != NewPrefix(0, 0) {
		t.Errorf("parent of /0 = %v, want /0", got)
	}
}

func TestHalvesPanicsOn32(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Halves on /32 did not panic")
		}
	}()
	MustParsePrefix("10.0.0.1/32").Halves()
}

func TestParentHalvesInverse(t *testing.T) {
	f := func(a uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw%32) + 1 // 1..32 so Parent is a real split
		p := NewPrefix(Addr(a), bits)
		lo, hi := p.Parent().Halves()
		return p == lo || p == hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/24")
	b := MustParsePrefix("10.0.0.128/25")
	c := MustParsePrefix("10.0.1.0/24")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes must overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint prefixes must not overlap")
	}
	if !a.Overlaps(a) {
		t.Error("prefix must overlap itself")
	}
}

func TestAddrsIteration(t *testing.T) {
	p := MustParsePrefix("192.0.2.8/30")
	var got []Addr
	p.Addrs(func(a Addr) bool {
		got = append(got, a)
		return true
	})
	want := []Addr{
		MustParseAddr("192.0.2.8"), MustParseAddr("192.0.2.9"),
		MustParseAddr("192.0.2.10"), MustParseAddr("192.0.2.11"),
	}
	if len(got) != len(want) {
		t.Fatalf("got %d addrs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("addr[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestAddrsEarlyStop(t *testing.T) {
	p := MustParsePrefix("192.0.2.0/24")
	n := 0
	p.Addrs(func(Addr) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Fatalf("early stop visited %d, want 5", n)
	}
}

func TestAddrSlicePanicsOnHuge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("AddrSlice on /8 did not panic")
		}
	}()
	MustParsePrefix("10.0.0.0/8").AddrSlice()
}

func TestFirstLast(t *testing.T) {
	p := MustParsePrefix("203.0.113.64/28")
	if p.First() != MustParseAddr("203.0.113.64") {
		t.Errorf("First = %v", p.First())
	}
	if p.Last() != MustParseAddr("203.0.113.79") {
		t.Errorf("Last = %v", p.Last())
	}
}

func TestTopOfAddressSpace(t *testing.T) {
	// Prefix iteration and arithmetic at the very top of the space must not
	// wrap around.
	p := MustParsePrefix("255.255.255.248/29")
	var got []Addr
	p.Addrs(func(a Addr) bool {
		got = append(got, a)
		return true
	})
	if len(got) != 8 {
		t.Fatalf("iterated %d addrs, want 8", len(got))
	}
	if got[7] != MustParseAddr("255.255.255.255") {
		t.Fatalf("last = %v", got[7])
	}
	if p.Last() != MustParseAddr("255.255.255.255") {
		t.Fatalf("Last = %v", p.Last())
	}
	if !p.IsBoundary(MustParseAddr("255.255.255.255")) {
		t.Fatal("broadcast at top of space not flagged")
	}
	// Mates at the top wrap within their own /31 and /30 only.
	top := MustParseAddr("255.255.255.254")
	if top.Mate31() != MustParseAddr("255.255.255.255") {
		t.Fatalf("mate31 = %v", top.Mate31())
	}
	if top.Mate30() != MustParseAddr("255.255.255.253") {
		t.Fatalf("mate30 = %v", top.Mate30())
	}
}
