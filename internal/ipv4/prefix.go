package ipv4

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is a CIDR prefix (subnet): a base address and a prefix length.
// The base is always stored in canonical (masked) form, so two Prefix values
// describing the same subnet compare equal and can be used as map keys.
type Prefix struct {
	base Addr
	bits int
}

// NewPrefix returns the canonical /bits prefix covering addr.
// It panics if bits is outside [0, 32]; use MakePrefix for checked creation.
func NewPrefix(addr Addr, bits int) Prefix {
	p, err := MakePrefix(addr, bits)
	if err != nil {
		panic(err)
	}
	return p
}

// MakePrefix returns the canonical /bits prefix covering addr, validating bits.
func MakePrefix(addr Addr, bits int) (Prefix, error) {
	if bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipv4: prefix length %d out of range", bits)
	}
	return Prefix{base: addr & mask(bits), bits: bits}, nil
}

// ParsePrefix parses CIDR notation such as "198.51.100.0/30".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipv4: invalid prefix %q: missing '/'", s)
	}
	a, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil {
		return Prefix{}, fmt.Errorf("ipv4: invalid prefix %q: bad length", s)
	}
	return MakePrefix(a, bits)
}

// MustParsePrefix parses CIDR notation and panics on error (fixture helper).
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func mask(bits int) Addr {
	if bits == 0 {
		return 0
	}
	return Addr(^uint32(0) << (32 - bits))
}

// Base returns the canonical (lowest) address of the prefix.
func (p Prefix) Base() Addr { return p.base }

// Bits returns the prefix length (0..32). A /31 or /30 covering two or four
// addresses is the paper's point-to-point link; anything shorter is a
// multi-access LAN candidate.
func (p Prefix) Bits() int { return p.bits }

// IsValid reports whether p was constructed (the zero Prefix is a valid /0,
// so validity here means "explicitly created"; a zero Prefix has bits 0 and
// base 0 which is also the whole address space — callers that need a
// distinguished "no prefix" should track it separately).
func (p Prefix) IsValid() bool { return p.bits >= 0 && p.bits <= 32 }

// String renders CIDR notation.
func (p Prefix) String() string {
	return p.base.String() + "/" + strconv.Itoa(p.bits)
}

// MarshalText renders CIDR notation, so prefixes embed in JSON artifacts as
// strings (a Prefix's fields are unexported and would otherwise serialize as
// an empty object).
func (p Prefix) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText parses CIDR notation.
func (p *Prefix) UnmarshalText(text []byte) error {
	parsed, err := ParsePrefix(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// Contains reports whether addr falls inside p.
func (p Prefix) Contains(addr Addr) bool {
	return addr&mask(p.bits) == p.base
}

// Overlaps reports whether the address ranges of p and q intersect.
func (p Prefix) Overlaps(q Prefix) bool {
	if p.bits <= q.bits {
		return p.Contains(q.base)
	}
	return q.Contains(p.base)
}

// Size returns the number of addresses covered by p (2^(32-bits)).
// For /0 the result 2^32 does not fit in uint32, so the return type is uint64.
func (p Prefix) Size() uint64 { return 1 << (32 - p.bits) }

// HostCount returns the number of assignable host addresses under common
// practice: all addresses for /31 and /32 (RFC 3021 point-to-point), and
// Size-2 (excluding network and broadcast) otherwise.
func (p Prefix) HostCount() uint64 {
	if p.bits >= 31 {
		return p.Size()
	}
	return p.Size() - 2
}

// First returns the lowest address in p (the network address for /30 and
// shorter prefixes).
func (p Prefix) First() Addr { return p.base }

// Last returns the highest address in p (the broadcast address for /30 and
// shorter prefixes).
func (p Prefix) Last() Addr { return p.base + Addr(p.Size()-1) }

// NetworkAddr returns the network (all-zero host bits) address.
func (p Prefix) NetworkAddr() Addr { return p.base }

// BroadcastAddr returns the broadcast (all-one host bits) address.
func (p Prefix) BroadcastAddr() Addr { return p.Last() }

// IsBoundary reports whether addr is the network or broadcast address of p.
// Heuristic H9 (boundary address reduction) forbids collected subnets with
// prefix shorter than /31 from containing boundary addresses.
func (p Prefix) IsBoundary(addr Addr) bool {
	if p.bits >= 31 {
		return false
	}
	return addr == p.NetworkAddr() || addr == p.BroadcastAddr()
}

// Parent returns the prefix one bit shorter that covers p (used when growing
// the temporary subnet in Algorithm 1). Parent of a /0 is itself.
func (p Prefix) Parent() Prefix {
	if p.bits == 0 {
		return p
	}
	return NewPrefix(p.base, p.bits-1)
}

// Halves splits p into its two /bits+1 children (used by heuristic H9 when
// dividing a subnet that contains a boundary address). It panics for /32.
func (p Prefix) Halves() (lo, hi Prefix) {
	if p.bits >= 32 {
		panic("ipv4: cannot split a /32")
	}
	lo = NewPrefix(p.base, p.bits+1)
	hi = NewPrefix(p.base+Addr(p.Size()/2), p.bits+1)
	return lo, hi
}

// Addrs iterates over every address in p in increasing order, calling fn for
// each; iteration stops early if fn returns false. For /0 this visits 2^32
// addresses — callers are expected to bound the prefix length first.
func (p Prefix) Addrs(fn func(Addr) bool) {
	n := p.Size()
	a := p.base
	for i := uint64(0); i < n; i++ {
		if !fn(a) {
			return
		}
		a++
	}
}

// AddrSlice materializes the addresses of p. It panics for prefixes shorter
// than /16 to prevent accidental gigantic allocations.
func (p Prefix) AddrSlice() []Addr {
	if p.bits < 16 {
		panic("ipv4: AddrSlice on prefix shorter than /16")
	}
	out := make([]Addr, 0, p.Size())
	p.Addrs(func(a Addr) bool {
		out = append(out, a)
		return true
	})
	return out
}
