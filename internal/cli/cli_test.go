package cli

import (
	"os"
	"path/filepath"
	"testing"

	"tracenet/internal/netsim"
	"tracenet/internal/topo"
)

func TestLoadBuiltins(t *testing.T) {
	for _, name := range BuiltinNames() {
		if name == "isps" {
			continue // covered separately: heavier
		}
		sc, err := Load(name, 1)
		if err != nil {
			t.Errorf("Load(%q): %v", name, err)
			continue
		}
		if sc.Topo == nil || sc.Vantage == "" {
			t.Errorf("Load(%q): incomplete scenario %+v", name, sc)
		}
		if sc.Topo.HostByName(sc.Vantage) == nil {
			t.Errorf("Load(%q): vantage %q not a host", name, sc.Vantage)
		}
	}
}

func TestLoadDefault(t *testing.T) {
	sc, err := Load("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Description == "" || len(sc.Destinations) == 0 {
		t.Fatalf("default scenario incomplete: %+v", sc)
	}
}

func TestLoadJSONFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Figure3().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sc, err := Load(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Vantage != "vantage" {
		t.Fatalf("vantage = %q, want the host literally named vantage", sc.Vantage)
	}
	if len(sc.Topo.Subnets) != 6 {
		t.Fatalf("subnets = %d", len(sc.Topo.Subnets))
	}
	// The loaded topology must be runnable.
	n := netsim.New(sc.Topo, netsim.Config{})
	if _, err := n.PortFor(sc.Vantage); err != nil {
		t.Fatal(err)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load("/no/such/file.json", 1); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("not a topology"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path, 1); err == nil {
		t.Fatal("corrupt file loaded")
	}
}
