// Package cli holds the shared plumbing of the command-line tools: resolving
// a topology argument (built-in generator name or JSON file) into a simulated
// network and a default vantage/destination pair.
package cli

import (
	"fmt"
	"os"
	"sort"
	"strings"

	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/topo"
)

// Scenario is a loaded topology plus the context a tool needs to use it.
type Scenario struct {
	Topo *netsim.Topology
	// Vantage is the default vantage host name.
	Vantage string
	// Destinations are suggested trace targets (may be empty for JSON
	// topologies).
	Destinations []ipv4.Addr
	// Description names what was loaded.
	Description string
}

// BuiltinNames lists the built-in topology generators.
func BuiltinNames() []string {
	return []string{"figure3", "figure2", "chain", "internet2", "geant", "isps", "random"}
}

// Load resolves name as a built-in topology or, failing that, a topology
// JSON file path.
func Load(name string, seed int64) (*Scenario, error) {
	switch strings.ToLower(name) {
	case "", "figure3":
		t := topo.Figure3()
		return &Scenario{
			Topo:         t,
			Vantage:      "vantage",
			Destinations: []ipv4.Addr{ipv4.MustParseAddr("10.0.5.2")},
			Description:  "paper Figure 3 micro-topology",
		}, nil
	case "figure2":
		t := topo.Figure2()
		return &Scenario{
			Topo:         t,
			Vantage:      "A",
			Destinations: []ipv4.Addr{ipv4.MustParseAddr("10.2.3.1")}, // host D
			Description:  "paper Figure 2 overlay-network motivation",
		}, nil
	case "chain":
		t := topo.Chain(8)
		return &Scenario{
			Topo:         t,
			Vantage:      "vantage",
			Destinations: []ipv4.Addr{ipv4.MustParseAddr("10.9.255.2")},
			Description:  "8-router point-to-point chain",
		}, nil
	case "internet2":
		r := topo.Internet2()
		return &Scenario{
			Topo:         r.Topo,
			Vantage:      "vantage",
			Destinations: r.Targets(),
			Description:  "Internet2-like research network (Table 1)",
		}, nil
	case "geant":
		r := topo.GEANT()
		return &Scenario{
			Topo:         r.Topo,
			Vantage:      "vantage",
			Destinations: r.Targets(),
			Description:  "GEANT-like research network (Table 2)",
		}, nil
	case "isps":
		sc := topo.ISPCores(seed, seed+1000)
		return &Scenario{
			Topo:         sc.Topo,
			Vantage:      topo.VantageNames[0],
			Destinations: sc.TargetsFor(),
			Description:  "four ISP cores with three vantage points (§4.2)",
		}, nil
	case "random":
		t, targets := topo.Random(topo.RandomSpec{Seed: seed})
		return &Scenario{
			Topo:         t,
			Vantage:      "vantage",
			Destinations: targets,
			Description:  fmt.Sprintf("random topology (seed %d)", seed),
		}, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("%q is not a built-in topology (%s) and cannot be opened: %w",
			name, strings.Join(BuiltinNames(), ", "), err)
	}
	defer f.Close()
	t, err := netsim.ReadJSON(f)
	if err != nil {
		return nil, err
	}
	sc := &Scenario{Topo: t, Description: "topology file " + name}
	var hosts []string
	for _, h := range t.Hosts {
		hosts = append(hosts, h.Name)
	}
	sort.Strings(hosts)
	if len(hosts) > 0 {
		sc.Vantage = hosts[0]
	}
	for _, h := range hosts {
		if h == "vantage" {
			sc.Vantage = h
		}
	}
	return sc, nil
}
