// Command tracenetlint is tracenet's project-specific static-analysis gate:
// a multichecker over the internal/lint analyzer suite. It loads the
// requested packages (default ./...), type-checks them against the standard
// library, runs every analyzer that matches each package, and prints findings
// as file:line:col: analyzer: message. The exit status is 0 when the tree is
// clean, 2 when any invariant is violated, 1 on loader errors — mirroring go
// vet so scripts/check.sh and CI can treat it as one more vet pass.
//
// The allocation-budget gate is a separate mode: -allocbudget recompiles the
// hot probe-path packages with escape-analysis diagnostics and fails (exit 2)
// on any heap escape above the committed per-function budgets in
// internal/lint/allocbudget/budgets.txt; -allocbudget-write regenerates that
// file from the current tree.
//
// Usage:
//
//	go run ./cmd/tracenetlint ./...
//	go run ./cmd/tracenetlint -list
//	go run ./cmd/tracenetlint -allocbudget
//	go run ./cmd/tracenetlint -allocbudget-write
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"tracenet/internal/lint"
	"tracenet/internal/lint/allocbudget"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	budgetCheck := flag.Bool("allocbudget", false,
		"run the hot-path allocation-budget gate instead of the analyzers")
	budgetWrite := flag.Bool("allocbudget-write", false,
		"regenerate "+allocbudget.BudgetsFile+" from the current tree")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: tracenetlint [-list] [-allocbudget | -allocbudget-write] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *budgetCheck || *budgetWrite {
		runAllocBudget(*budgetWrite)
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracenetlint:", err)
		os.Exit(1)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracenetlint:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tracenetlint: %d finding(s)\n", len(diags))
		os.Exit(2)
	}
}

// runAllocBudget measures the hot-path escapes and either rewrites the budget
// file (write=true) or diffs against it, exiting 2 on violations.
func runAllocBudget(write bool) {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracenetlint:", err)
		os.Exit(1)
	}
	escapes, err := allocbudget.Measure(root, allocbudget.Packages)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracenetlint:", err)
		os.Exit(1)
	}
	path := filepath.Join(root, allocbudget.BudgetsFile)
	if write {
		text := allocbudget.FormatBudgets(allocbudget.Count(escapes), goVersion())
		if err := os.WriteFile(path, text, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "tracenetlint:", err)
			os.Exit(1)
		}
		fmt.Printf("tracenetlint: wrote %d budget entries to %s\n",
			len(allocbudget.Count(escapes)), allocbudget.BudgetsFile)
		return
	}
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracenetlint:", err)
		os.Exit(1)
	}
	budgets, err := allocbudget.ParseBudgets(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracenetlint:", err)
		os.Exit(1)
	}
	violations, ratchets := allocbudget.Diff(escapes, budgets)
	for _, r := range ratchets {
		fmt.Fprintf(os.Stderr, "tracenetlint: ratchet: %s\n", r)
	}
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Printf("allocbudget: %s\n", v.Describe())
		}
		fmt.Fprintf(os.Stderr, "tracenetlint: %d function(s) over allocation budget\n", len(violations))
		os.Exit(2)
	}
	fmt.Printf("tracenetlint: allocation budgets hold (%d escapes across %d hot-path packages)\n",
		len(escapes), len(allocbudget.Packages))
}

func moduleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a module")
	}
	return filepath.Dir(gomod), nil
}

func goVersion() string {
	out, err := exec.Command("go", "version").Output()
	if err != nil {
		return "unknown toolchain"
	}
	return string(bytes.TrimSpace(out))
}
