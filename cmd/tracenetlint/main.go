// Command tracenetlint is tracenet's project-specific static-analysis gate:
// a multichecker over the internal/lint analyzer suite. It loads the
// requested packages (default ./...), type-checks them against the standard
// library, runs every analyzer that matches each package, and prints findings
// as file:line:col: analyzer: message. The exit status is 0 when the tree is
// clean, 2 when any invariant is violated, 1 on loader errors — mirroring go
// vet so scripts/check.sh and CI can treat it as one more vet pass.
//
// Usage:
//
//	go run ./cmd/tracenetlint ./...
//	go run ./cmd/tracenetlint -list
package main

import (
	"flag"
	"fmt"
	"os"

	"tracenet/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: tracenetlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracenetlint:", err)
		os.Exit(1)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracenetlint:", err)
		os.Exit(1)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "tracenetlint: %d finding(s)\n", len(diags))
		os.Exit(2)
	}
}
