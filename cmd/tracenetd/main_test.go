package main

// End-to-end tests of the tracenetd command: the HTTP lifecycle of a
// submitted campaign, the tenant policy file, and the signal-triggered
// drain-and-restart. Real signals are replaced by the options.shutdown test
// hook, and the bound address is observed through options.onServe. These are
// command tests (outside the determinism lint scope), so wall-clock polling
// with generous deadlines is acceptable here.

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func httpDo(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// serveDaemon launches run in the background and returns the base URL plus
// the channels to drain it.
func serveDaemon(t *testing.T, b *strings.Builder, o options) (base string, shutdown chan struct{}, done chan error) {
	t.Helper()
	shutdown = make(chan struct{})
	addrCh := make(chan string, 1)
	o.serve = "127.0.0.1:0"
	o.shutdown = shutdown
	o.onServe = func(a string) { addrCh <- a }
	done = make(chan error, 1)
	go func() { done <- run(b, o) }()
	select {
	case a := <-addrCh:
		return "http://" + a, shutdown, done
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
		return "", nil, nil
	}
}

// waitStatus polls one campaign's status document until it reaches one of
// the wanted statuses, and reports which. Callers racing a fast campaign
// pass both the transient and the final status ("running", "done").
func waitStatus(t *testing.T, base, id string, want ...string) string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := httpDo(t, "GET", base+"/api/v1/campaigns/"+id, "")
		var doc struct {
			Status string `json:"status"`
		}
		if code == http.StatusOK && json.Unmarshal([]byte(body), &doc) == nil {
			for _, w := range want {
				if doc.Status == w {
					return doc.Status
				}
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached status %s", id, strings.Join(want, " or "))
	return ""
}

func drain(t *testing.T, shutdown chan struct{}, done chan error) {
	t.Helper()
	close(shutdown)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("run did not drain")
	}
}

func TestDaemonSubmitPollFetch(t *testing.T) {
	spool := t.TempDir()
	var b strings.Builder
	base, shutdown, done := serveDaemon(t, &b, options{spool: spool})

	code, body := httpDo(t, "POST", base+"/api/v1/campaigns",
		`{"tenant": "alice", "topology": "figure3", "eval": true}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal([]byte(body), &acc); err != nil {
		t.Fatal(err)
	}
	waitStatus(t, base, acc.ID, "done")

	if code, body := httpDo(t, "GET", base+"/api/v1/campaigns/"+acc.ID+"/report", ""); code != http.StatusOK ||
		!strings.Contains(body, "campaign "+acc.ID+" tenant alice") {
		t.Errorf("report: %d %q", code, body)
	}
	if code, _ := httpDo(t, "GET", base+"/api/v1/campaigns/"+acc.ID+"/eval", ""); code != http.StatusOK {
		t.Errorf("eval: status %d", code)
	}
	if code, body := httpDo(t, "GET", base+"/metrics", ""); code != http.StatusOK ||
		!strings.Contains(body, "tracenet_daemon_campaigns_total") {
		t.Errorf("/metrics missing daemon families: %d", code)
	}

	drain(t, shutdown, done)
	if !strings.Contains(b.String(), "tracenetd on http://") {
		t.Errorf("missing banner in output: %q", b.String())
	}
}

// TestDaemonDrainRestartResume: the command-level half of the PR's
// acceptance criterion — drain mid-run via the shutdown hook (the SIGTERM
// path), restart against the same spool, and observe the campaign finish
// with a readable report.
func TestDaemonDrainRestartResume(t *testing.T) {
	spool := t.TempDir()
	var b strings.Builder
	base, shutdown, done := serveDaemon(t, &b, options{spool: spool})

	code, body := httpDo(t, "POST", base+"/api/v1/campaigns",
		`{"tenant": "alice", "topology": "internet2", "parallel": 2}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	// On a fast box the whole campaign can complete between two polls, so
	// accept "done" as well — the spool check below tolerates both outcomes.
	waitStatus(t, base, "c0001", "running", "done")
	drain(t, shutdown, done)

	st, err := os.ReadFile(filepath.Join(spool, "c0001.state.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(st, &doc); err != nil {
		t.Fatal(err)
	}
	// Almost always the drain catches the campaign mid-run; on a very fast
	// box it may have finished between the status poll and the drain.
	if doc.Status != "interrupted" && doc.Status != "done" {
		t.Fatalf("after drain, spool state = %s, want interrupted or done", doc.Status)
	}

	var b2 strings.Builder
	base2, shutdown2, done2 := serveDaemon(t, &b2, options{spool: spool})
	waitStatus(t, base2, "c0001", "done")
	if code, body := httpDo(t, "GET", base2+"/api/v1/campaigns/c0001/report", ""); code != http.StatusOK ||
		!strings.Contains(body, "campaign c0001 tenant alice") {
		t.Errorf("resumed report: %d %q", code, body)
	}
	drain(t, shutdown2, done2)
}

func TestDaemonTenantPolicyFile(t *testing.T) {
	dir := t.TempDir()
	policy := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(policy, []byte(
		`[{"name": "alice", "probe_budget": 10}, {"name": "*", "max_concurrent": 4}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	base, shutdown, done := serveDaemon(t, &b, options{spool: t.TempDir(), tenants: policy})

	code, body := httpDo(t, "POST", base+"/api/v1/campaigns", `{"tenant": "alice", "topology": "figure3"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	waitStatus(t, base, "c0001", "done")
	// The 10-probe budget is spent by the first campaign; the next submission
	// is refused.
	if code, body := httpDo(t, "POST", base+"/api/v1/campaigns", `{"tenant": "alice", "topology": "figure3"}`); code != http.StatusTooManyRequests {
		t.Errorf("submit on spent budget: %d %s, want 429", code, body)
	}
	drain(t, shutdown, done)
}

func TestRunFlagErrors(t *testing.T) {
	var b strings.Builder
	if err := run(&b, options{}); err == nil || !strings.Contains(err.Error(), "-spool") {
		t.Errorf("missing -spool: err = %v", err)
	}
	if err := run(&b, options{spool: t.TempDir(), logLevel: "loud"}); err == nil {
		t.Error("bad -log-level accepted")
	}
	bad := filepath.Join(t.TempDir(), "tenants.json")
	if err := os.WriteFile(bad, []byte(`[{"probe_budget": 5}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&b, options{spool: t.TempDir(), tenants: bad}); err == nil ||
		!strings.Contains(err.Error(), "without a name") {
		t.Errorf("nameless tenant accepted: err = %v", err)
	}
}
