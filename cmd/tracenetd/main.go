// Command tracenetd is the long-running tracenet campaign service: an HTTP
// submission API, a freshness-aware campaign scheduler, per-tenant probe
// budgets, and a crash-safe spool (see DESIGN.md §14).
//
// Usage:
//
//	tracenetd -spool dir [flags]
//
//	-spool dir        the campaign journal directory (required; created if
//	                  absent). Accepted specs, lifecycle state, checkpoints,
//	                  and final artifacts all live here; a restart replays it.
//	-serve addr       HTTP listen address (default :8080; ":0" picks a port).
//	                  Serves the submission API under /api/v1/ alongside the
//	                  observability plane (/metrics, /readyz, /campaigns, ...).
//	-tenants file     tenant policy file: a JSON array of tenant configs
//	                  ({"name", "max_concurrent", "probe_budget",
//	                  "rate_interval", "rate_burst"}). The entry named "*"
//	                  sets the default policy for tenants not listed.
//	-concurrent n     campaigns run at once (default 1; 1 keeps cross-campaign
//	                  pacing deterministic)
//	-stall-window n   per-campaign stall watchdog window in virtual ticks for
//	                  the /readyz staleness check (0 = default)
//	-log-level l      minimum structured log level: debug, info, warn, error
//	                  (default info); logs go to stderr as JSON lines and to
//	                  the /logz ring
//
// The API:
//
//	POST   /api/v1/campaigns                 submit a campaign spec
//	GET    /api/v1/campaigns                 list campaigns
//	GET    /api/v1/campaigns/{id}            status + live progress
//	GET    /api/v1/campaigns/{id}/report     byte-stable final report
//	GET    /api/v1/campaigns/{id}/eval       ground-truth evaluation JSON
//	GET    /api/v1/campaigns/{id}/checkpoint campaign checkpoint (v1)
//	DELETE /api/v1/campaigns/{id}            cancel
//
// SIGINT/SIGTERM drains: running campaigns are cancelled and checkpointed
// into the spool, queued ones stay journaled, and the next start resumes
// both — a campaign interrupted mid-run produces a final report
// byte-identical to an uninterrupted one.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"tracenet/internal/daemon"
	"tracenet/internal/obs"
)

// options carries every CLI knob into run, keeping the flag surface testable.
type options struct {
	spool       string
	serve       string
	tenants     string // tenant policy JSON file
	concurrent  int
	stallWindow uint64
	logLevel    string

	// Test hooks: closing shutdown substitutes for a SIGINT/SIGTERM
	// delivery, and onServe observes the bound listen address.
	shutdown <-chan struct{}
	onServe  func(addr string)
}

func main() {
	var o options
	flag.StringVar(&o.spool, "spool", "", "campaign journal directory (required)")
	flag.StringVar(&o.serve, "serve", ":8080", "HTTP listen address (\":0\" picks a port)")
	flag.StringVar(&o.tenants, "tenants", "", "tenant policy JSON file (array of tenant configs; name \"*\" sets the default)")
	flag.IntVar(&o.concurrent, "concurrent", 1, "campaigns run at once")
	flag.Uint64Var(&o.stallWindow, "stall-window", 0, "per-campaign stall watchdog window in virtual ticks (0 = default)")
	flag.StringVar(&o.logLevel, "log-level", "", "minimum structured log level: debug, info, warn, error")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "tracenetd: unexpected arguments:", flag.Args())
		os.Exit(2)
	}
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "tracenetd:", err)
		os.Exit(1)
	}
}

// readTenants parses the tenant policy file: a JSON array of TenantConfig,
// where the entry named "*" becomes the default policy for unlisted tenants.
func readTenants(path string) (configured []daemon.TenantConfig, defaults daemon.TenantConfig, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, defaults, err
	}
	var all []daemon.TenantConfig
	if err := json.Unmarshal(data, &all); err != nil {
		return nil, defaults, fmt.Errorf("%s: %w", path, err)
	}
	for _, tc := range all {
		if tc.Name == "*" {
			defaults = tc
			defaults.Name = ""
			continue
		}
		if tc.Name == "" {
			return nil, defaults, fmt.Errorf("%s: tenant config without a name", path)
		}
		configured = append(configured, tc)
	}
	return configured, defaults, nil
}

func run(w io.Writer, o options) error {
	if o.spool == "" {
		return errors.New("-spool is required")
	}
	cfg := daemon.Config{
		Spool:       o.spool,
		Concurrent:  o.concurrent,
		StallWindow: o.stallWindow,
	}
	if o.tenants != "" {
		configured, defaults, err := readTenants(o.tenants)
		if err != nil {
			return err
		}
		cfg.Tenants = configured
		cfg.TenantDefaults = defaults
	}

	d, err := daemon.New(cfg)
	if err != nil {
		return err
	}

	lvl := obs.LevelInfo
	if o.logLevel != "" {
		if lvl, err = obs.ParseLevel(o.logLevel); err != nil {
			return err
		}
	}
	// The daemon's log rides the scheduler clock, so two same-seed runs emit
	// identically-stamped records.
	lg := obs.NewLogger(d.Clock(), os.Stderr, lvl, obs.DefaultLogRingSize)
	d.SetLogger(lg)

	// The signal handler is installed before the server starts so a signal
	// racing the first request is never lost. Tests substitute the shutdown
	// channel for a real signal.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if o.shutdown != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go func() {
			select {
			case <-o.shutdown:
				cancel()
			case <-ctx.Done():
			}
		}()
	}

	// Mount the API and readiness sources before the listener opens: the
	// first request already sees /api/v1/ routed and /readyz reporting the
	// replay state.
	srv := obs.NewServer(d.Telemetry(), lg)
	d.Attach(srv)
	addr, err := srv.Start(o.serve)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "tracenetd on http://%s/ (spool %s)\n", addr, o.spool)
	if o.onServe != nil {
		o.onServe(addr.String())
	}

	if err := d.Start(); err != nil {
		srv.Shutdown(context.Background())
		return err
	}
	lg.Info("tracenetd serving", "addr", addr.String(), "spool", o.spool)

	<-ctx.Done()
	fmt.Fprintln(w, "draining: checkpointing running campaigns into the spool")
	if err := d.Drain(context.Background()); err != nil {
		return err
	}
	return srv.Shutdown(context.Background())
}
