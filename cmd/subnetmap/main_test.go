package main

import (
	"strings"
	"testing"
)

func TestRunMapWithRoutersAndAdjacencies(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "figure3", "", 1, true, true, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"subnet map:", "10.0.2.0/29", "subnet adjacencies:",
		"router-level view", "router 1:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunBadVantage(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "figure3", "ghost", 1, false, false, nil); err == nil {
		t.Error("bad vantage accepted")
	}
}
