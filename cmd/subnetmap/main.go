// Command subnetmap runs the full mapping pipeline over a simulated network:
// tracenet sessions toward a target set, assembly of the collected subnets
// into a subnet-level topology map, and (optionally) Ally-style alias
// resolution to group the interfaces into routers — the router-level map the
// paper positions tracenet as the collector for.
//
// Usage:
//
//	subnetmap [flags] [destination...]
//
//	-topo name|file   built-in topology or topology JSON (default figure3)
//	-vantage host     vantage host name
//	-seed n           simulation seed
//	-routers          also resolve aliases and print the router-level view
//	-adj              print subnet adjacencies (the map's links)
//
// Without destinations, the topology's suggested targets are traced.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tracenet/internal/alias"
	"tracenet/internal/cli"
	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/topomap"
)

func main() {
	var (
		topoName = flag.String("topo", "figure3", "built-in topology name or JSON file")
		vantage  = flag.String("vantage", "", "vantage host name")
		seed     = flag.Int64("seed", 1, "simulation seed")
		routers  = flag.Bool("routers", false, "resolve aliases and print the router-level view")
		adj      = flag.Bool("adj", false, "print subnet adjacencies")
	)
	flag.Parse()
	if err := run(os.Stdout, *topoName, *vantage, *seed, *routers, *adj, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "subnetmap:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, topoName, vantage string, seed int64, routers, adj bool, args []string) error {
	sc, err := cli.Load(topoName, seed)
	if err != nil {
		return err
	}
	if vantage == "" {
		vantage = sc.Vantage
	}
	dests := sc.Destinations
	if len(args) > 0 {
		dests = dests[:0]
		for _, a := range args {
			d, err := ipv4.ParseAddr(a)
			if err != nil {
				return err
			}
			dests = append(dests, d)
		}
	}
	if len(dests) == 0 {
		return fmt.Errorf("no destinations: pass one or more addresses")
	}

	net := netsim.New(sc.Topo, netsim.Config{Seed: seed})
	port, err := net.PortFor(vantage)
	if err != nil {
		return err
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Cache: true})
	sess := core.NewSession(pr, core.Config{})
	m := topomap.New()
	for _, dst := range dests {
		res, err := sess.Trace(dst)
		if err != nil {
			return err
		}
		m.AddSession(res)
	}
	fmt.Fprintf(w, "mapped %s from %s with %d probes\n\n", sc.Description, vantage, pr.Stats().Sent)
	fmt.Fprint(w, m)

	if adj {
		fmt.Fprintln(w, "\nsubnet adjacencies:")
		for _, pair := range m.AdjacentSubnets() {
			fmt.Fprintf(w, "  %v -- %v\n", pair[0].Prefix, pair[1].Prefix)
		}
	}

	if routers {
		var subnets [][]ipv4.Addr
		var addrs []ipv4.Addr
		seen := map[ipv4.Addr]bool{}
		for _, e := range m.Subnets() {
			subnets = append(subnets, e.Addrs)
			for _, a := range e.Addrs {
				if !seen[a] {
					seen[a] = true
					addrs = append(addrs, a)
				}
			}
		}
		rv := alias.NewResolver(port, port.LocalAddr())
		groups, err := rv.Resolve(addrs, alias.SameSubnetConstraint(subnets))
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\nrouter-level view (%d routers, %d alias probes):\n", len(groups), rv.Probes())
		for i, g := range groups {
			fmt.Fprintf(w, "  router %d: %v\n", i+1, g)
		}
	}
	return nil
}
