// Command traceroute runs the classic baseline over the same simulated
// substrate as cmd/tracenet: one responding IP address per hop, nothing
// more — exactly what the paper improves on.
//
// Usage:
//
//	traceroute [flags] [destination...]
//
//	-topo name|file   built-in topology or a topology JSON file (default figure3)
//	-vantage host     vantage host name
//	-proto p          probe protocol: icmp (default), udp, tcp
//	-maxttl n         maximum trace length (default 30)
//	-classic          vary the flow identifier per probe (non-Paris behaviour)
//	-rr               set the record-route option (DisCarte-style two addresses per hop)
//	-seed n           simulation seed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tracenet/internal/cli"
	"tracenet/internal/discarte"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
	"tracenet/internal/trace"
)

func main() {
	var (
		topoName = flag.String("topo", "figure3", "built-in topology name or JSON file")
		vantage  = flag.String("vantage", "", "vantage host name")
		protoStr = flag.String("proto", "icmp", "probe protocol: icmp, udp, tcp")
		maxTTL   = flag.Int("maxttl", 30, "maximum trace length")
		classic  = flag.Bool("classic", false, "vary the flow identifier per probe")
		rr       = flag.Bool("rr", false, "set the record-route option (DisCarte-style)")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if err := run(os.Stdout, *topoName, *vantage, *protoStr, *maxTTL, *classic, *rr, *seed, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "traceroute:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, topoName, vantage, protoStr string, maxTTL int, classic, rr bool, seed int64, args []string) error {
	sc, err := cli.Load(topoName, seed)
	if err != nil {
		return err
	}
	if vantage == "" {
		vantage = sc.Vantage
	}
	var proto probe.Protocol
	switch protoStr {
	case "icmp":
		proto = probe.ICMP
	case "udp":
		proto = probe.UDP
	case "tcp":
		proto = probe.TCP
	default:
		return fmt.Errorf("unknown protocol %q", protoStr)
	}

	dests := sc.Destinations
	if len(args) > 0 {
		dests = dests[:0]
		for _, a := range args {
			d, err := ipv4.ParseAddr(a)
			if err != nil {
				return err
			}
			dests = append(dests, d)
		}
	}
	if len(dests) == 0 {
		return fmt.Errorf("no destinations: pass one or more addresses")
	}

	net := netsim.New(sc.Topo, netsim.Config{Seed: seed})
	port, err := net.PortFor(vantage)
	if err != nil {
		return err
	}
	pr := probe.New(port, port.LocalAddr(), probe.Options{Protocol: proto, VaryFlow: classic, Cache: true, RecordRoute: rr})
	for _, dst := range dests {
		if rr {
			route, err := discarte.Run(pr, dst, discarte.Options{MaxTTL: maxTTL})
			if err != nil {
				return err
			}
			fmt.Fprint(w, route)
			continue
		}
		route, err := trace.Run(pr, dst, trace.Options{MaxTTL: maxTTL})
		if err != nil {
			return err
		}
		fmt.Fprint(w, route)
	}
	return nil
}
