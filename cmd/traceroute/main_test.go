package main

import (
	"strings"
	"testing"
)

func TestRunPlainTrace(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "figure3", "", "icmp", 30, false, false, 1, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"trace to 10.0.5.2", "reached=true", "10.0.1.1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunRecordRoute(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "figure3", "", "icmp", 30, false, true, 1, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"discarte trace", "out 10.0.1.0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "figure3", "", "nope", 30, false, false, 1, nil); err == nil {
		t.Error("bad protocol accepted")
	}
	if err := run(&b, "figure3", "", "icmp", 30, false, false, 1, []string{"zz"}); err == nil {
		t.Error("bad destination accepted")
	}
}
