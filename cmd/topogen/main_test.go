package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tracenet/internal/netsim"
)

func TestRunWritesLoadableJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var info strings.Builder
	if err := run("figure2", 1, path, &info); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(info.String(), "routers") {
		t.Errorf("info line missing: %q", info.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	topo, err := netsim.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Hosts) != 4 {
		t.Fatalf("figure2 hosts = %d, want 4", len(topo.Hosts))
	}
}

func TestRunUnknownKind(t *testing.T) {
	var info strings.Builder
	if err := run("marsnet", 1, filepath.Join(t.TempDir(), "x.json"), &info); err == nil {
		t.Error("unknown kind accepted")
	}
}
