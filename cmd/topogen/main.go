// Command topogen generates simulated topologies and writes them as JSON for
// use with cmd/tracenet and cmd/traceroute.
//
// Usage:
//
//	topogen [-kind name] [-seed n] [-o file]
//
// Kinds: figure3 (default), figure2, chain, internet2, geant, isps, random.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tracenet/internal/cli"
)

func main() {
	var (
		kind = flag.String("kind", "figure3", "topology kind: "+strings.Join(cli.BuiltinNames(), ", "))
		seed = flag.Int64("seed", 1, "generator seed")
		out  = flag.String("o", "-", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*kind, *seed, *out, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(kind string, seed int64, out string, errW io.Writer) error {
	sc, err := cli.Load(kind, seed)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := sc.Topo.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(errW, "topogen: %s: %d routers, %d subnets, %d hosts\n",
		sc.Description, len(sc.Topo.Routers), len(sc.Topo.Subnets), len(sc.Topo.Hosts))
	if len(sc.Destinations) > 0 {
		fmt.Fprintf(errW, "topogen: %d suggested targets, first %v; vantage %q\n",
			len(sc.Destinations), sc.Destinations[0], sc.Vantage)
	}
	return nil
}
