package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: tracenet
cpu: Example CPU @ 2.40GHz
BenchmarkSingleTrace-8   	    9498	    126318 ns/op	        33.00 probes/trace	   65168 B/op	     589 allocs/op
BenchmarkProbeExchange-8 	 1000000	       702 ns/op	     120 B/op	       3 allocs/op
PASS
ok  	tracenet	2.498s
pkg: tracenet/internal/telemetry
BenchmarkCounterAdd-8    	164363322	         7.3 ns/op
PASS
ok  	tracenet/internal/telemetry	1.9s
`

func TestConvert(t *testing.T) {
	var out strings.Builder
	if err := convert(strings.NewReader(sample), &out, "20260805"); err != nil {
		t.Fatal(err)
	}
	var base Baseline
	if err := json.Unmarshal([]byte(out.String()), &base); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if base.Date != "20260805" || base.GOOS != "linux" || base.CPU == "" {
		t.Errorf("bad header: %+v", base)
	}
	if len(base.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(base.Benchmarks), base.Benchmarks)
	}
	st := base.Benchmarks[0]
	if st.Name != "BenchmarkSingleTrace-8" || st.Package != "tracenet" || st.Iterations != 9498 {
		t.Errorf("bad first benchmark: %+v", st)
	}
	if st.Metrics["ns/op"] != 126318 || st.Metrics["probes/trace"] != 33 || st.Metrics["allocs/op"] != 589 {
		t.Errorf("bad metrics: %v", st.Metrics)
	}
	if ca := base.Benchmarks[2]; ca.Package != "tracenet/internal/telemetry" || ca.Metrics["ns/op"] != 7.3 {
		t.Errorf("package header not tracked across ok-trailers: %+v", ca)
	}
}

func TestConvertRejectsEmptyInput(t *testing.T) {
	var out strings.Builder
	if err := convert(strings.NewReader("PASS\nok \ttracenet\t1s\n"), &out, "x"); err == nil {
		t.Error("benchmark-free input accepted")
	}
}

func TestCompareReportsMovement(t *testing.T) {
	baseline := `{
  "date": "20260805",
  "go": "go-test",
  "benchmarks": [
    {"name": "BenchmarkProbeExchange-8", "iterations": 1, "metrics": {"ns/op": 1000, "B/op": 600, "allocs/op": 15}},
    {"name": "BenchmarkSingleTrace-8", "iterations": 1, "metrics": {"ns/op": 126318, "allocs/op": 589}}
  ]
}`
	// allocs/op down (exact metric: any change reported), ns/op up 50%
	// (past the relative threshold), SingleTrace within noise, CounterAdd new.
	current := `BenchmarkProbeExchange-4   1000000   1500 ns/op   600 B/op   13 allocs/op
BenchmarkSingleTrace-4     9498      126400 ns/op   589 allocs/op
BenchmarkCounterAdd-4      164363322   7.3 ns/op
`
	var out strings.Builder
	if err := compare(strings.NewReader(current), strings.NewReader(baseline), &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	for _, want := range []string{
		"allocs/op",
		"15 -> 13",
		"improved",
		"1000 -> 1500",
		"REGRESSION",
		"new benchmark",
		"1 metric(s) regressed vs baseline 20260805 (warn-only",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("compare report missing %q:\n%s", want, report)
		}
	}
	if strings.Contains(report, "BenchmarkSingleTrace-4   ns/op") {
		t.Errorf("noise-level ns/op movement reported:\n%s", report)
	}
}

func TestCompareClean(t *testing.T) {
	baseline := `{"date": "20260805", "benchmarks": [
	  {"name": "BenchmarkProbeExchange-8", "iterations": 1, "metrics": {"allocs/op": 15}}]}`
	current := "BenchmarkProbeExchange-8   1000000   700 ns/op   15 allocs/op\n"
	var out strings.Builder
	if err := compare(strings.NewReader(current), strings.NewReader(baseline), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "no regressions vs baseline 20260805") {
		t.Errorf("clean compare: %s", out.String())
	}
}

func TestBenchKey(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkProbeExchange-8":  "BenchmarkProbeExchange",
		"BenchmarkProbeExchange-16": "BenchmarkProbeExchange",
		"BenchmarkProbeExchange":    "BenchmarkProbeExchange",
		"BenchmarkFoo-bar":          "BenchmarkFoo-bar",
	} {
		if got := benchKey(in); got != want {
			t.Errorf("benchKey(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParseBenchLineMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX-8",                     // no fields
		"BenchmarkX-8 notanint 5 ns/op",    // bad iteration count
		"BenchmarkX-8 100 notafloat ns/op", // bad metric value
		"BenchmarkX-8 100 5",               // dangling value without unit
	} {
		if _, ok := parseBenchLine(line); ok {
			t.Errorf("malformed line parsed: %q", line)
		}
	}
}
