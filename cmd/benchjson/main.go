// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so benchmark baselines can be committed and diffed
// (scripts/bench.sh writes BENCH_<date>.json with it).
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -date 20260805 > BENCH_20260805.json
//	go test -bench . -benchmem ./... | benchjson -compare BENCH_20260805.json
//
// The date is injected by the caller rather than read from the wall clock,
// keeping the conversion itself a pure function of its input.
//
// -compare diffs the piped run against a committed baseline and prints one
// line per benchmark metric that moved. It is warn-only by design — exit
// status is 0 regardless, because single-run benchmarks on shared CI hardware
// are too noisy to gate on. The hard perf gate is the allocation-budget check
// (tracenetlint -allocbudget); this diff exists so a reviewer sees the trend.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Baseline is the document schema.
type Baseline struct {
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	date := flag.String("date", "", "baseline date stamp (e.g. 20260805), supplied by the caller")
	baseline := flag.String("compare", "",
		"diff the piped bench output against this baseline JSON (warn-only, always exits 0)")
	flag.Parse()
	if *baseline != "" {
		f, err := os.Open(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := compare(os.Stdin, f, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := convert(os.Stdin, os.Stdout, *date); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// convert parses go test -bench output from r and writes the JSON baseline to
// w. Non-benchmark lines (pkg headers, PASS/ok trailers, test logs) are
// skipped; header lines fill the document's environment fields.
func convert(r io.Reader, w io.Writer, date string) error {
	base, err := parse(r, date)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

// parse reads go test -bench output into a Baseline document.
func parse(r io.Reader, date string) (Baseline, error) {
	base := Baseline{Date: date, Go: runtime.Version(), Benchmarks: []Benchmark{}}
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			base.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			base.Benchmarks = append(base.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return Baseline{}, err
	}
	if len(base.Benchmarks) == 0 {
		return Baseline{}, fmt.Errorf("no benchmark result lines in input")
	}
	return base, nil
}

// regressThreshold is the relative increase past which a timing metric is
// labelled a regression in the compare report. Count metrics (allocs/op) are
// exact, so any increase at all is flagged.
const regressThreshold = 0.10

// compare diffs the bench output on cur against the baseline JSON on base,
// writing a per-metric report to w. It never fails the caller over a perf
// delta: the report is advisory and the only returned errors are parse
// failures.
func compare(cur io.Reader, base io.Reader, w io.Writer) error {
	var baseline Baseline
	if err := json.NewDecoder(base).Decode(&baseline); err != nil {
		return fmt.Errorf("baseline: %v", err)
	}
	current, err := parse(cur, "")
	if err != nil {
		return err
	}
	old := make(map[string]Benchmark, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		old[benchKey(b.Name)] = b
	}
	regressions := 0
	for _, b := range current.Benchmarks {
		prev, ok := old[benchKey(b.Name)]
		if !ok {
			fmt.Fprintf(w, "%-32s new benchmark (not in baseline %s)\n", benchKey(b.Name), baseline.Date)
			continue
		}
		units := make([]string, 0, len(b.Metrics))
		for u := range b.Metrics {
			if _, ok := prev.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			was, now := prev.Metrics[u], b.Metrics[u]
			verdict := metricVerdict(u, was, now)
			if verdict == "" {
				continue
			}
			if verdict == "REGRESSION" {
				regressions++
			}
			fmt.Fprintf(w, "%-32s %-12s %g -> %g (%+.1f%%) %s\n",
				benchKey(b.Name), u, was, now, relDelta(was, now)*100, verdict)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(w, "benchjson: %d metric(s) regressed vs baseline %s (warn-only; not gating)\n",
			regressions, baseline.Date)
	} else {
		fmt.Fprintf(w, "benchjson: no regressions vs baseline %s\n", baseline.Date)
	}
	return nil
}

// benchKey strips the trailing -N GOMAXPROCS suffix so runs on machines with
// different core counts still match.
func benchKey(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// metricVerdict classifies one metric's movement: "REGRESSION", "improved",
// or "" for noise-level movement not worth a report line. Exact count metrics
// (allocs/op, B/op) regress on any increase; timing and rate metrics get the
// relative threshold.
func metricVerdict(unit string, was, now float64) string {
	exact := unit == "allocs/op" || unit == "B/op"
	d := relDelta(was, now)
	switch {
	case now > was && (exact || d > regressThreshold):
		return "REGRESSION"
	case now < was && (exact || d < -regressThreshold):
		return "improved"
	}
	return ""
}

func relDelta(was, now float64) float64 {
	if was == 0 {
		if now == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return (now - was) / was
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   1000000   702 ns/op   120 B/op   3 allocs/op   12.0 probes/trace
//
// Fields after the iteration count come in value/unit pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
