// Command benchjson converts `go test -bench` text output into a stable JSON
// document, so benchmark baselines can be committed and diffed
// (scripts/bench.sh writes BENCH_<date>.json with it).
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -date 20260805 > BENCH_20260805.json
//
// The date is injected by the caller rather than read from the wall clock,
// keeping the conversion itself a pure function of its input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Package    string             `json:"package,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Baseline is the document schema.
type Baseline struct {
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	date := flag.String("date", "", "baseline date stamp (e.g. 20260805), supplied by the caller")
	flag.Parse()
	if err := convert(os.Stdin, os.Stdout, *date); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// convert parses go test -bench output from r and writes the JSON baseline to
// w. Non-benchmark lines (pkg headers, PASS/ok trailers, test logs) are
// skipped; header lines fill the document's environment fields.
func convert(r io.Reader, w io.Writer, date string) error {
	base := Baseline{Date: date, Go: runtime.Version(), Benchmarks: []Benchmark{}}
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			base.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			base.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			base.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBenchLine(line)
			if !ok {
				continue
			}
			b.Package = pkg
			base.Benchmarks = append(base.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines in input")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(base)
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   1000000   702 ns/op   120 B/op   3 allocs/op   12.0 probes/trace
//
// Fields after the iteration count come in value/unit pairs.
func parseBenchLine(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}
