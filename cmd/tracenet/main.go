// Command tracenet runs a tracenet session against a simulated network: a
// path trace that collects, at every hop, the complete subnet accommodating
// the responding interface (Tozal & Sarac, IMC 2010).
//
// Usage:
//
//	tracenet [flags] [destination...]
//
//	-topo name|file   built-in topology (figure3, figure2, chain, internet2,
//	                  geant, isps, random) or a topology JSON file; default figure3
//	-vantage host     vantage host name (default: the topology's default)
//	-proto p          probe protocol: icmp (default), udp, tcp
//	-maxttl n         maximum trace length (default 30)
//	-seed n           simulation seed
//	-subnets          print the collected subnet inventory after the trace
//	-debug            log every probe exchange to stderr
//
// Fault injection and resilience:
//
//	-faults file      install a fault plan (JSON, see netsim.FaultPlan)
//	-chaos seed       install a random fault plan generated from seed
//	-backoff          retry silent probes with exponential backoff + jitter
//	-breaker          shed load to silent zones with a circuit breaker
//	-checkpoint file  write a session checkpoint after tracing
//	-resume file      preload the session from a checkpoint and skip
//	                  destinations it already completed
//
// Without destinations, the topology's suggested targets are traced.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tracenet/internal/cli"
	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
)

// options carries every CLI knob into run, keeping the flag surface testable.
type options struct {
	topo    string
	vantage string
	proto   string
	maxTTL  int
	seed    int64
	subnets bool
	debug   bool
	faults  string // fault-plan JSON file
	chaos   int64  // random fault-plan seed, 0 = off
	backoff bool
	breaker bool
	ckptOut string // write checkpoint here after the run
	ckptIn  string // resume from this checkpoint
	dests   []string
}

func main() {
	var o options
	flag.StringVar(&o.topo, "topo", "figure3", "built-in topology name or JSON file")
	flag.StringVar(&o.vantage, "vantage", "", "vantage host name")
	flag.StringVar(&o.proto, "proto", "icmp", "probe protocol: icmp, udp, tcp")
	flag.IntVar(&o.maxTTL, "maxttl", 30, "maximum trace length")
	flag.Int64Var(&o.seed, "seed", 1, "simulation seed")
	flag.BoolVar(&o.subnets, "subnets", false, "print the collected subnet inventory")
	flag.BoolVar(&o.debug, "debug", false, "log every probe exchange to stderr")
	flag.StringVar(&o.faults, "faults", "", "fault plan JSON file to install")
	flag.Int64Var(&o.chaos, "chaos", 0, "install a random fault plan from this seed")
	flag.BoolVar(&o.backoff, "backoff", false, "retry silent probes with exponential backoff")
	flag.BoolVar(&o.breaker, "breaker", false, "circuit-break probing into persistently silent zones")
	flag.StringVar(&o.ckptOut, "checkpoint", "", "write a session checkpoint to this file")
	flag.StringVar(&o.ckptIn, "resume", "", "resume the session from this checkpoint file")
	flag.Parse()
	o.dests = flag.Args()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "tracenet:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o options) error {
	sc, err := cli.Load(o.topo, o.seed)
	if err != nil {
		return err
	}
	if o.vantage == "" {
		o.vantage = sc.Vantage
	}
	var proto probe.Protocol
	switch o.proto {
	case "icmp":
		proto = probe.ICMP
	case "udp":
		proto = probe.UDP
	case "tcp":
		proto = probe.TCP
	default:
		return fmt.Errorf("unknown protocol %q", o.proto)
	}

	dests := sc.Destinations
	if len(o.dests) > 0 {
		dests = dests[:0]
		for _, a := range o.dests {
			d, err := ipv4.ParseAddr(a)
			if err != nil {
				return err
			}
			dests = append(dests, d)
		}
	}
	if len(dests) == 0 {
		return fmt.Errorf("no destinations: pass one or more addresses")
	}

	net := netsim.New(sc.Topo, netsim.Config{Seed: o.seed})
	faulted := false
	if o.faults != "" {
		f, err := os.Open(o.faults)
		if err != nil {
			return err
		}
		plan, err := netsim.ReadFaultPlan(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := net.InstallFaults(plan); err != nil {
			return err
		}
		faulted = true
	}
	if o.chaos != 0 {
		if faulted {
			return fmt.Errorf("-faults and -chaos are mutually exclusive")
		}
		if err := net.InstallFaults(netsim.RandomFaultPlan(sc.Topo, o.chaos)); err != nil {
			return err
		}
		faulted = true
	}

	port, err := net.PortFor(o.vantage)
	if err != nil {
		return err
	}
	var tr probe.Transport = port
	if o.debug {
		tr = probe.LoggingTransport{Inner: port, W: os.Stderr}
	}
	popts := probe.Options{Protocol: proto, Cache: true}
	if o.backoff {
		popts.Retry = &probe.RetryPolicy{MaxRetries: 2, BackoffBase: 4, BackoffMax: 64, Jitter: 0.25}
	}
	if o.breaker {
		popts.Breaker = &probe.BreakerConfig{}
	}
	pr := probe.New(tr, port.LocalAddr(), popts)

	cfg := core.Config{MaxTTL: o.maxTTL}
	var sess *core.Session
	if o.ckptIn != "" {
		f, err := os.Open(o.ckptIn)
		if err != nil {
			return err
		}
		cp, err := core.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			return err
		}
		sess, err = core.NewSessionFromCheckpoint(pr, cfg, cp)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "resumed from %s: %d subnets, %d destinations done\n",
			o.ckptIn, len(sess.Subnets()), len(sess.Done()))
	} else {
		sess = core.NewSession(pr, cfg)
	}

	fmt.Fprintf(w, "tracenet over %s, vantage %s (%v), %s probes\n",
		sc.Description, o.vantage, port.LocalAddr(), proto)
	var recovered uint64
	for _, dst := range dests {
		if sess.IsDone(dst) {
			fmt.Fprintf(w, "tracenet to %v: already completed in checkpoint, skipped\n", dst)
			continue
		}
		res, err := sess.Trace(dst)
		if err != nil {
			return err
		}
		recovered += res.Recovered
		fmt.Fprint(w, res)
	}
	if o.subnets {
		fmt.Fprintf(w, "\ncollected subnets (%d):\n", len(sess.Subnets()))
		for _, s := range sess.Subnets() {
			fmt.Fprintln(w, " ", s)
		}
	}
	if deg := sess.DegradedSubnets(); len(deg) > 0 {
		fmt.Fprintf(w, "\ndegraded subnets (%d):\n", len(deg))
		for _, s := range deg {
			fmt.Fprintln(w, " ", s)
		}
	}

	st := pr.Stats()
	fmt.Fprintf(w, "\nprobes sent %d, answered %d, retried %d, served from cache %d\n",
		st.Sent, st.Answered, st.Retries, st.Cached)
	if faulted || st.FaultEvents() > 0 || st.Timeouts > 0 || recovered > 0 {
		fmt.Fprintf(w, "resilience: timeouts %d, corrupt %d, breaker opens %d, breaker skips %d, backoff ticks %d, recovered errors %d\n",
			st.Timeouts, st.Corrupt, st.BreakerOpens, st.BreakerSkips, st.BackoffTicks, recovered)
	}
	if faulted {
		fs := net.FaultStats()
		fmt.Fprintf(w, "faults injected: flap drops %d, blackhole drops %d, corrupted %d, truncated %d, delayed %d, duplicated %d, storm drops %d\n",
			fs.FlapDrops, fs.BlackholeDrops, fs.Corrupted, fs.Truncated, fs.Delayed, fs.Duplicated, fs.StormDrops)
	}

	if o.ckptOut != "" {
		f, err := os.Create(o.ckptOut)
		if err != nil {
			return err
		}
		if err := sess.WriteCheckpoint(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint written to %s\n", o.ckptOut)
	}
	return nil
}
