// Command tracenet runs a tracenet session against a simulated network: a
// path trace that collects, at every hop, the complete subnet accommodating
// the responding interface (Tozal & Sarac, IMC 2010).
//
// Usage:
//
//	tracenet [flags] [destination...]
//
//	-topo name|file   built-in topology (figure3, figure2, chain, internet2,
//	                  geant, isps, random) or a topology JSON file; default figure3
//	-vantage host     vantage host name (default: the topology's default)
//	-proto p          probe protocol: icmp (default), udp, tcp
//	-maxttl n         maximum trace length (default 30)
//	-seed n           simulation seed
//	-subnets          print the collected subnet inventory after the trace
//	-debug            log every probe exchange to stderr as structured
//	                  JSON-lines records (see DESIGN.md §13)
//
// Fault injection and resilience:
//
//	-faults file      install a fault plan (JSON, see netsim.FaultPlan)
//	-chaos seed       install a random fault plan generated from seed
//	-backoff          retry silent probes with exponential backoff + jitter
//	-breaker          shed load to silent zones with a circuit breaker
//	-defend           harden inference against lying responders: cross-validate
//	                  suspicious replies from a second TTL, quarantine
//	                  inconsistent sources, demote conflicted subnets
//	                  (DESIGN.md §11)
//	-checkpoint file  write a session checkpoint after tracing
//	-resume file      preload the session from a checkpoint and skip
//	                  destinations it already completed
//
// Campaigns (parallel multi-destination collection, see DESIGN.md §9):
//
//	-campaign            force campaign mode (implied by the flags below
//	                     and by -parallel > 1); useful for a single-worker
//	                     campaign, e.g. to compare against -parallel 8
//	-targets file        read destinations from a file, one address per line
//	                     ('#' starts a comment); combined with positional args
//	-parallel n          trace up to n destinations concurrently (default 1)
//	-campaign-budget n   shared wire-probe budget across all workers; targets
//	                     still queued when it runs out are skipped
//	-campaign-out file   write a campaign checkpoint (JSON) after the run
//	-campaign-resume f   resume a campaign: skip targets done in the
//	                     checkpoint and never re-explore its subnets
//	-campaign-greedy     also share subnets by member address (saves more
//	                     probes; probe totals become schedule-dependent)
//	-campaign-no-cache   disable the shared subnet cache (for comparisons)
//	-spec file           load a tracenetd campaign spec (JSON, DESIGN.md §14)
//	                     and run it locally in campaign mode: the spec's
//	                     topology, seed, vantage, protocol, targets, budget,
//	                     and resilience knobs override the equivalent flags;
//	                     daemon-only fields (tenant, priority, rescans) are
//	                     ignored
//
// Any of these flags (or -parallel > 1) selects campaign mode: every
// destination is traced by its own session/prober pair against a shared
// subnet cache, and the observations merge into one subnet-level topology.
// The merged report is byte-identical whatever -parallel is.
//
// Ground-truth evaluation (see DESIGN.md §10):
//
//	-eval             score the collected subnets against the simulator's
//	                  true topology: per-subnet verdicts (exact, subset,
//	                  superset, phantom, missed), precision/recall on subnets
//	                  and addresses, prefix-length error histogram
//	-eval-out file    also write the evaluation as a JSON artifact (implies
//	                  -eval)
//	-eval-core        score against router-to-router core subnets only,
//	                  excluding host access subnets from the truth
//
// Works in both single-session and campaign mode; with telemetry enabled the
// scores also land in the registry as the tracenet_eval_* metric families.
//
// Telemetry and profiling (see DESIGN.md §8):
//
//	-metrics-out file    write the metric registry at exit; Prometheus text
//	                     exposition, or JSON when the path ends in .json
//	-trace-out file      write the span hierarchy as Chrome trace-event JSON
//	                     (load in chrome://tracing or Perfetto)
//	-flight-recorder f   arm automatic flight-recorder dumps into f: every
//	                     incident (breaker open, degraded subnet) appends the
//	                     recent probe history
//	-flight-size n       flight recorder capacity in events (default 256)
//	-cpuprofile file     write a pprof CPU profile of the run
//	-memprofile file     write a pprof heap profile at exit
//
// Timestamps in metrics and traces are netsim's virtual ticks, so two runs
// with the same seed and flags produce byte-identical telemetry artifacts.
//
// Live observability (see DESIGN.md §13):
//
//	-serve addr       serve the observability plane over HTTP (":0" picks a
//	                  free port): /metrics, /metrics.json, /healthz, /readyz,
//	                  /logz, /campaigns, /flightz, /debug/pprof/. The process
//	                  keeps serving after the run completes; SIGINT/SIGTERM
//	                  drains the server and writes the telemetry artifacts —
//	                  the same ones a clean exit writes.
//	-progress         print a deterministic "progress: i/n targets" line as
//	                  each campaign target completes (implies campaign mode)
//	-stall-window n   campaign stall watchdog window in virtual ticks for
//	                  the /readyz staleness check (default 4096)
//	-log-level l      minimum structured log level: debug, info, warn, error
//	                  (default info; -debug lowers it to debug)
//
// Without destinations, the topology's suggested targets are traced.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"

	"tracenet/internal/cli"
	"tracenet/internal/collect"
	"tracenet/internal/core"
	"tracenet/internal/daemon"
	"tracenet/internal/groundtruth"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/obs"
	"tracenet/internal/probe"
	"tracenet/internal/telemetry"
)

// options carries every CLI knob into run, keeping the flag surface testable.
type options struct {
	topo    string
	vantage string
	proto   string
	maxTTL  int
	seed    int64
	subnets bool
	debug   bool
	faults  string // fault-plan JSON file
	chaos   int64  // random fault-plan seed, 0 = off
	backoff bool
	breaker bool
	defend  bool
	ckptOut string // write checkpoint here after the run
	ckptIn  string // resume from this checkpoint

	spec            string // tracenetd campaign spec file; implies campaign mode
	campaign        bool   // force campaign mode even at parallel 1
	targets         string // destinations file, one address per line
	parallel        int    // concurrent traces in campaign mode
	campaignBudget  uint64 // shared wire-probe budget, 0 = unlimited
	campaignOut     string // write a campaign checkpoint here
	campaignResume  string // resume a campaign from this checkpoint
	campaignGreedy  bool   // enable the cache's live member tier
	campaignNoCache bool   // disable the shared subnet cache

	eval     bool   // score collected subnets against the simulated truth
	evalOut  string // write the evaluation JSON artifact here (implies eval)
	evalCore bool   // score against core (non-host) subnets only

	metricsOut string // metric registry exposition file (.json selects JSON)
	traceOut   string // Chrome trace-event JSON file
	flightOut  string // incident dump file; arms the flight recorder
	flightSize int    // flight recorder capacity in events
	cpuProfile string // pprof CPU profile file
	memProfile string // pprof heap profile file

	serve       string // observability HTTP address; arms the live plane
	progress    bool   // print deterministic campaign progress lines
	stallWindow uint64 // stall watchdog window in ticks, 0 = default
	logLevel    string // minimum structured log level name

	dests []string

	// Test hooks: closing shutdown substitutes for a SIGINT/SIGTERM
	// delivery, and onServe observes the bound observability address.
	shutdown <-chan struct{}
	onServe  func(addr string)
}

// telemetryEnabled reports whether any observability flag asks for the
// telemetry layer to be attached.
func (o options) telemetryEnabled() bool {
	return o.metricsOut != "" || o.traceOut != "" || o.flightOut != "" || o.serve != ""
}

// evalMode reports whether a ground-truth evaluation was requested.
func (o options) evalMode() bool {
	return o.eval || o.evalOut != "" || o.evalCore
}

// campaignMode reports whether any campaign flag selects the parallel
// multi-destination collection engine over the single-session path.
func (o options) campaignMode() bool {
	return o.campaign || o.spec != "" || o.targets != "" || o.parallel > 1 || o.campaignBudget > 0 ||
		o.campaignOut != "" || o.campaignResume != "" || o.campaignGreedy || o.campaignNoCache ||
		o.progress
}

// applySpec maps a tracenetd campaign spec onto the equivalent CLI options,
// so the same submission file drives the daemon and a local one-shot run.
// Fields the spec sets override their flags; daemon-only fields (tenant,
// priority, rescan schedule) have no local meaning and are ignored.
func (o *options) applySpec(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	sp, err := daemon.ReadSpec(f)
	f.Close()
	if err != nil {
		return err
	}
	if err := sp.Validate(); err != nil {
		return err
	}
	if sp.Topology != "" {
		o.topo = sp.Topology
	}
	if sp.Seed != 0 {
		o.seed = sp.Seed
	}
	if sp.Vantage != "" {
		o.vantage = sp.Vantage
	}
	if sp.Proto != "" {
		o.proto = sp.Proto
	}
	if sp.MaxTTL > 0 {
		o.maxTTL = sp.MaxTTL
	}
	if len(sp.Targets) > 0 {
		o.dests = sp.Targets
	}
	if sp.Parallel > 0 {
		o.parallel = sp.Parallel
	}
	if sp.Budget > 0 {
		o.campaignBudget = sp.Budget
	}
	if sp.Chaos != 0 {
		o.chaos = sp.Chaos
	}
	o.defend = o.defend || sp.Defend
	o.backoff = o.backoff || sp.Backoff
	o.breaker = o.breaker || sp.Breaker
	o.campaignGreedy = o.campaignGreedy || sp.Greedy
	o.campaignNoCache = o.campaignNoCache || sp.DisableCache
	o.eval = o.eval || sp.Eval
	return nil
}

func main() {
	var o options
	flag.StringVar(&o.topo, "topo", "figure3", "built-in topology name or JSON file")
	flag.StringVar(&o.vantage, "vantage", "", "vantage host name")
	flag.StringVar(&o.proto, "proto", "icmp", "probe protocol: icmp, udp, tcp")
	flag.IntVar(&o.maxTTL, "maxttl", 30, "maximum trace length")
	flag.Int64Var(&o.seed, "seed", 1, "simulation seed")
	flag.BoolVar(&o.subnets, "subnets", false, "print the collected subnet inventory")
	flag.BoolVar(&o.debug, "debug", false, "log every probe exchange to stderr")
	flag.StringVar(&o.faults, "faults", "", "fault plan JSON file to install")
	flag.Int64Var(&o.chaos, "chaos", 0, "install a random fault plan from this seed")
	flag.BoolVar(&o.backoff, "backoff", false, "retry silent probes with exponential backoff")
	flag.BoolVar(&o.breaker, "breaker", false, "circuit-break probing into persistently silent zones")
	flag.BoolVar(&o.defend, "defend", false, "cross-validate suspicious replies and quarantine inconsistent responders")
	flag.StringVar(&o.ckptOut, "checkpoint", "", "write a session checkpoint to this file")
	flag.StringVar(&o.ckptIn, "resume", "", "resume the session from this checkpoint file")
	flag.StringVar(&o.spec, "spec", "", "load a tracenetd campaign spec (JSON) and run it locally")
	flag.BoolVar(&o.campaign, "campaign", false, "force campaign mode even with -parallel 1")
	flag.StringVar(&o.targets, "targets", "", "read destinations from this file, one address per line")
	flag.IntVar(&o.parallel, "parallel", 1, "trace up to n destinations concurrently (campaign mode)")
	flag.Uint64Var(&o.campaignBudget, "campaign-budget", 0, "shared wire-probe budget across all campaign workers")
	flag.StringVar(&o.campaignOut, "campaign-out", "", "write a campaign checkpoint to this file")
	flag.StringVar(&o.campaignResume, "campaign-resume", "", "resume a campaign from this checkpoint file")
	flag.BoolVar(&o.campaignGreedy, "campaign-greedy", false, "share cached subnets by member address (non-deterministic probe totals)")
	flag.BoolVar(&o.campaignNoCache, "campaign-no-cache", false, "disable the campaign's shared subnet cache")
	flag.BoolVar(&o.eval, "eval", false, "score the collected subnets against the simulated ground truth")
	flag.StringVar(&o.evalOut, "eval-out", "", "write the ground-truth evaluation as JSON to this file (implies -eval)")
	flag.BoolVar(&o.evalCore, "eval-core", false, "evaluate against core subnets only, excluding host access subnets")
	flag.StringVar(&o.metricsOut, "metrics-out", "", "write metrics here at exit (Prometheus text, or JSON for .json paths)")
	flag.StringVar(&o.traceOut, "trace-out", "", "write a Chrome trace-event JSON file of the run's spans")
	flag.StringVar(&o.flightOut, "flight-recorder", "", "dump the flight recorder into this file on every incident")
	flag.IntVar(&o.flightSize, "flight-size", telemetry.DefaultFlightRecorderSize, "flight recorder capacity in events")
	flag.StringVar(&o.cpuProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	flag.StringVar(&o.memProfile, "memprofile", "", "write a pprof heap profile to this file")
	flag.StringVar(&o.serve, "serve", "", "serve the observability plane over HTTP on this address (\":0\" picks a port)")
	flag.BoolVar(&o.progress, "progress", false, "print a deterministic progress line per completed campaign target")
	flag.Uint64Var(&o.stallWindow, "stall-window", 0, "campaign stall watchdog window in virtual ticks (0 = default)")
	flag.StringVar(&o.logLevel, "log-level", "", "minimum structured log level: debug, info, warn, error")
	flag.Parse()
	o.dests = flag.Args()
	if err := run(os.Stdout, o); err != nil {
		fmt.Fprintln(os.Stderr, "tracenet:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, o options) error {
	if o.spec != "" {
		if err := o.applySpec(o.spec); err != nil {
			return err
		}
	}
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	sc, err := cli.Load(o.topo, o.seed)
	if err != nil {
		return err
	}
	if o.vantage == "" {
		o.vantage = sc.Vantage
	}
	var proto probe.Protocol
	switch o.proto {
	case "icmp":
		proto = probe.ICMP
	case "udp":
		proto = probe.UDP
	case "tcp":
		proto = probe.TCP
	default:
		return fmt.Errorf("unknown protocol %q", o.proto)
	}

	dests := sc.Destinations
	if len(o.dests) > 0 || o.targets != "" {
		dests = nil
		if o.targets != "" {
			fromFile, err := readTargets(o.targets)
			if err != nil {
				return err
			}
			dests = append(dests, fromFile...)
		}
		for _, a := range o.dests {
			d, err := ipv4.ParseAddr(a)
			if err != nil {
				return err
			}
			dests = append(dests, d)
		}
	}
	if len(dests) == 0 {
		return fmt.Errorf("no destinations: pass one or more addresses")
	}

	net := netsim.New(sc.Topo, netsim.Config{Seed: o.seed})
	faulted := false
	if o.faults != "" {
		f, err := os.Open(o.faults)
		if err != nil {
			return err
		}
		plan, err := netsim.ReadFaultPlan(f)
		f.Close()
		if err != nil {
			return err
		}
		if err := net.InstallFaults(plan); err != nil {
			return err
		}
		faulted = true
	}
	if o.chaos != 0 {
		if faulted {
			return fmt.Errorf("-faults and -chaos are mutually exclusive")
		}
		if err := net.InstallFaults(netsim.RandomFaultPlan(sc.Topo, o.chaos)); err != nil {
			return err
		}
		faulted = true
	}

	// The telemetry layer rides on the simulator's virtual clock, so every
	// artifact it emits is reproducible from the seed.
	var tel *telemetry.Telemetry
	var traceFile, flightFile *os.File
	if o.telemetryEnabled() {
		tel = telemetry.New(net)
		size := o.flightSize
		if size <= 0 {
			size = telemetry.DefaultFlightRecorderSize
		}
		tel.Recorder = telemetry.NewFlightRecorder(size)
		if o.traceOut != "" {
			traceFile, err = os.Create(o.traceOut)
			if err != nil {
				return err
			}
			defer traceFile.Close()
			tel.Tracer = telemetry.NewTracer(traceFile)
		}
		if o.flightOut != "" {
			flightFile, err = os.Create(o.flightOut)
			if err != nil {
				return err
			}
			defer flightFile.Close()
			tel.SetIncidentWriter(flightFile)
		}
		net.SetTelemetry(tel)
	}

	// A serving run turns SIGINT/SIGTERM into a graceful snapshot-and-drain:
	// the context cancels, the HTTP server drains, and the run still writes
	// every telemetry artifact a clean exit would. The signal handler is
	// installed before the server starts so a signal racing the first request
	// is never lost. Tests substitute the shutdown channel for a real signal.
	ctx := context.Background()
	if o.serve != "" {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
		defer stop()
	}
	if o.shutdown != nil {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		defer cancel()
		go func() {
			select {
			case <-o.shutdown:
				cancel()
			case <-ctx.Done():
			}
		}()
	}

	// The structured logger backs both -debug (JSON lines on stderr) and the
	// plane's /logz ring; it ticks on the simulator's virtual clock.
	var lg *obs.Logger
	if o.serve != "" || o.debug {
		lvl := obs.LevelInfo
		if o.debug {
			lvl = obs.LevelDebug
		}
		if o.logLevel != "" {
			if lvl, err = obs.ParseLevel(o.logLevel); err != nil {
				return err
			}
		}
		var logW io.Writer
		if o.debug {
			logW = os.Stderr
		}
		lg = obs.NewLogger(net, logW, lvl, obs.DefaultLogRingSize)
	}

	var srv *obs.Server
	var prog *collect.Progress
	if o.serve != "" {
		srv = obs.NewServer(tel, lg)
		if o.campaignMode() {
			prog = collect.NewProgress()
			wd := collect.NewWatchdog(prog, tel, o.stallWindow)
			srv.AddCampaign("campaign", prog)
			srv.AddCheck(obs.BudgetCheck(prog))
			srv.AddCheck(obs.BreakerStormCheck(prog, 0))
			srv.AddCheck(obs.StallCheck(wd, net))
		}
		addr, err := srv.Start(o.serve)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "observability plane on http://%s/\n", addr)
		if o.onServe != nil {
			o.onServe(addr.String())
		}
	}

	port, err := net.PortFor(o.vantage)
	if err != nil {
		return err
	}
	var tr probe.Transport = port
	if o.debug {
		tr = probe.LoggingTransport{Inner: port, Clock: net, Sink: obs.ProbeSink(lg)}
	}
	popts := probe.Options{Protocol: proto, Cache: true, Telemetry: tel}
	if o.backoff {
		popts.Retry = &probe.RetryPolicy{MaxRetries: 2, BackoffBase: 4, BackoffMax: 64, Jitter: 0.25}
	}
	if o.breaker {
		popts.Breaker = &probe.BreakerConfig{}
	}
	if o.campaignMode() {
		if o.ckptIn != "" || o.ckptOut != "" {
			return fmt.Errorf("-checkpoint and -resume are single-session flags; use -campaign-out and -campaign-resume in campaign mode")
		}
		fmt.Fprintf(w, "tracenet campaign over %s, vantage %s (%v), %s probes\n",
			sc.Description, o.vantage, port.LocalAddr(), proto)
		if err := runCampaign(ctx, w, o, sc.Topo, net, popts, tel, lg, prog, dests); err != nil {
			return err
		}
		if err := awaitDrain(ctx, w, srv); err != nil {
			return err
		}
		return writeArtifacts(w, o, tel, traceFile, flightFile)
	}

	pr := probe.New(tr, port.LocalAddr(), popts)

	cfg := core.Config{MaxTTL: o.maxTTL, Defend: o.defend}
	var sess *core.Session
	if o.ckptIn != "" {
		f, err := os.Open(o.ckptIn)
		if err != nil {
			return err
		}
		cp, err := core.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			return err
		}
		sess, err = core.NewSessionFromCheckpoint(pr, cfg, cp)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "resumed from %s: %d subnets, %d destinations done\n",
			o.ckptIn, len(sess.Subnets()), len(sess.Done()))
	} else {
		sess = core.NewSession(pr, cfg)
	}

	fmt.Fprintf(w, "tracenet over %s, vantage %s (%v), %s probes\n",
		sc.Description, o.vantage, port.LocalAddr(), proto)
	var recovered, defenseProbes uint64
	for _, dst := range dests {
		if sess.IsDone(dst) {
			fmt.Fprintf(w, "tracenet to %v: already completed in checkpoint, skipped\n", dst)
			continue
		}
		res, err := sess.Trace(dst)
		if err != nil {
			return err
		}
		recovered += res.Recovered
		defenseProbes += res.DefenseProbes
		fmt.Fprint(w, res)
	}
	if o.subnets {
		fmt.Fprintf(w, "\ncollected subnets (%d):\n", len(sess.Subnets()))
		for _, s := range sess.Subnets() {
			fmt.Fprintln(w, " ", s)
		}
	}
	if deg := sess.DegradedSubnets(); len(deg) > 0 {
		fmt.Fprintf(w, "\ndegraded subnets (%d):\n", len(deg))
		for _, s := range deg {
			fmt.Fprintln(w, " ", s)
		}
	}

	st := pr.Stats()
	fmt.Fprintf(w, "\nprobes sent %d, answered %d, retried %d, served from cache %d\n",
		st.Sent, st.Answered, st.Retries, st.Cached)
	if faulted || st.FaultEvents() > 0 || st.Timeouts > 0 || recovered > 0 {
		fmt.Fprintf(w, "resilience: timeouts %d, corrupt %d, breaker opens %d, breaker skips %d, backoff ticks %d, recovered errors %d\n",
			st.Timeouts, st.Corrupt, st.BreakerOpens, st.BreakerSkips, st.BackoffTicks, recovered)
	}
	if faulted {
		fs := net.FaultStats()
		fmt.Fprintf(w, "faults injected: flap drops %d, blackhole drops %d, corrupted %d, truncated %d, delayed %d, duplicated %d, storm drops %d\n",
			fs.FlapDrops, fs.BlackholeDrops, fs.Corrupted, fs.Truncated, fs.Delayed, fs.Duplicated, fs.StormDrops)
		if fs.Byzantine() > 0 {
			fmt.Fprintf(w, "byzantine replies: liar spoofs %d, alias shares %d, hidden drops %d, echo mirrors %d\n",
				fs.LiarSpoofs, fs.AliasShares, fs.HiddenDrops, fs.EchoMirrors)
		}
	}
	if o.defend {
		q := sess.Quarantined()
		fmt.Fprintf(w, "defense: cross-check probes %d, quarantined %d", defenseProbes, len(q))
		if len(q) > 0 {
			fmt.Fprintf(w, " %v", q)
		}
		fmt.Fprintln(w)
	}

	if o.evalMode() {
		if err := runEval(w, o, sc.Topo, groundtruth.FromCoreSubnets(sess.Subnets()), tel); err != nil {
			return err
		}
	}

	if o.ckptOut != "" {
		f, err := os.Create(o.ckptOut)
		if err != nil {
			return err
		}
		if err := sess.WriteCheckpoint(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "checkpoint written to %s\n", o.ckptOut)
	}

	if err := awaitDrain(ctx, w, srv); err != nil {
		return err
	}
	return writeArtifacts(w, o, tel, traceFile, flightFile)
}

// awaitDrain keeps the observability plane serving after the run's work is
// done, until SIGINT/SIGTERM (or the test hook) cancels the context; the
// server then shuts down gracefully so artifact writing happens after the
// last request drains. A signal that already fired returns immediately.
func awaitDrain(ctx context.Context, w io.Writer, srv *obs.Server) error {
	if srv == nil {
		return nil
	}
	fmt.Fprintln(w, "observability plane serving; SIGINT/SIGTERM drains and writes artifacts")
	<-ctx.Done()
	return srv.Shutdown(context.Background())
}

// runCampaign drives the collect engine: every destination gets its own
// session/prober pair, the shared subnet cache spans them, and the merged
// report lands on w. prog (may be nil) feeds the observability plane's
// /campaigns endpoint; -progress prints a deterministic per-target line.
func runCampaign(ctx context.Context, w io.Writer, o options, top *netsim.Topology, net *netsim.Network, popts probe.Options, tel *telemetry.Telemetry, lg *obs.Logger, prog *collect.Progress, dests []ipv4.Addr) error {
	ccfg := collect.Config{
		Targets:      dests,
		Parallel:     o.parallel,
		Budget:       o.campaignBudget,
		DisableCache: o.campaignNoCache,
		Greedy:       o.campaignGreedy,
		Session:      core.Config{MaxTTL: o.maxTTL, Defend: o.defend},
		Probe:        popts,
		Telemetry:    tel,
		Progress:     prog,
		Dial: func(opts probe.Options) (*probe.Prober, error) {
			port, err := net.PortFor(o.vantage)
			if err != nil {
				return nil, err
			}
			var tr probe.Transport = port
			if o.debug {
				tr = probe.LoggingTransport{Inner: port, Clock: net, Sink: obs.ProbeSink(lg)}
			}
			return probe.New(tr, port.LocalAddr(), opts), nil
		},
	}
	if o.progress || lg != nil {
		// The completion count is tracked locally under the mutex so the
		// printed sequence 1/n..n/n is identical at any -parallel; which
		// target finished at each step is schedule-dependent, so the line
		// names only the count. Per-target detail goes to the log ring.
		var mu sync.Mutex
		done := 0
		total := len(dests)
		ccfg.OnTargetDone = func(r collect.TargetResult) {
			mu.Lock()
			done++
			if o.progress {
				fmt.Fprintf(w, "progress: %d/%d targets\n", done, total)
			}
			mu.Unlock()
			lg.Info("target done", "dst", r.Dst.String(), "status", string(r.Status))
		}
	}
	if o.campaignResume != "" {
		f, err := os.Open(o.campaignResume)
		if err != nil {
			return err
		}
		cp, err := collect.ReadCheckpoint(f)
		f.Close()
		if err != nil {
			return err
		}
		ccfg.Resume = cp
		fmt.Fprintf(w, "resuming campaign from %s: %d of %d targets done, %d subnets\n",
			o.campaignResume, len(cp.Done), len(cp.Targets), len(cp.Subnets))
	}

	rep, err := collect.Run(ctx, ccfg)
	if err != nil {
		return err
	}
	if _, err := rep.WriteTo(w); err != nil {
		return err
	}

	if o.evalMode() {
		if err := runEval(w, o, top, groundtruth.FromTopomap(rep.Map), tel); err != nil {
			return err
		}
	}

	if o.campaignOut != "" {
		f, err := os.Create(o.campaignOut)
		if err != nil {
			return err
		}
		if err := collect.WriteCheckpoint(f, rep.Checkpoint()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "campaign checkpoint written to %s\n", o.campaignOut)
	}
	return nil
}

// runEval scores the collected subnets against the simulator's ground truth,
// prints the deterministic text report, mirrors the scores onto the telemetry
// registry, and optionally writes the JSON artifact. Shared by the
// single-session and campaign paths.
func runEval(w io.Writer, o options, top *netsim.Topology, collected []groundtruth.CollectedSubnet, tel *telemetry.Telemetry) error {
	truth := groundtruth.FromTopology(top, groundtruth.Options{ExcludeHostSubnets: o.evalCore})
	score := truth.Score(collected)
	fmt.Fprintln(w)
	if _, err := score.WriteText(w); err != nil {
		return err
	}
	score.Export(tel)
	if o.evalOut != "" {
		f, err := os.Create(o.evalOut)
		if err != nil {
			return err
		}
		if err := score.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "evaluation written to %s\n", o.evalOut)
	}
	return nil
}

// readTargets reads a destinations file: one address per line, '#' starts a
// comment, blank lines are skipped.
func readTargets(path string) ([]ipv4.Addr, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var dests []ipv4.Addr
	for i, line := range strings.Split(string(data), "\n") {
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = line[:idx]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		d, err := ipv4.ParseAddr(line)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, i+1, err)
		}
		dests = append(dests, d)
	}
	return dests, nil
}

// writeArtifacts flushes the telemetry artifacts and heap profile the flags
// asked for; shared by the single-session and campaign paths.
func writeArtifacts(w io.Writer, o options, tel *telemetry.Telemetry, traceFile, flightFile *os.File) error {
	if tel != nil {
		if tel.Tracer != nil {
			if err := tel.Tracer.Close(); err != nil {
				return err
			}
			if err := traceFile.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "trace written to %s (%d events)\n", o.traceOut, tel.Tracer.Events())
		}
		if o.metricsOut != "" {
			f, err := os.Create(o.metricsOut)
			if err != nil {
				return err
			}
			write := tel.Registry.WritePrometheus
			if strings.HasSuffix(o.metricsOut, ".json") {
				write = tel.Registry.WriteJSON
			}
			if err := write(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "metrics written to %s\n", o.metricsOut)
		}
		if flightFile != nil {
			// A final snapshot after the incident dumps, so the artifact
			// carries the recorder's end-of-run tail whether the run ended
			// cleanly or was drained by a signal.
			if err := tel.DumpRecorder(flightFile, "end of run"); err != nil {
				return err
			}
			if err := flightFile.Close(); err != nil {
				return err
			}
			fmt.Fprintf(w, "flight recorder: %d incident dump(s) in %s\n", tel.Incidents(), o.flightOut)
		}
	}
	if o.memProfile != "" {
		f, err := os.Create(o.memProfile)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
