// Command tracenet runs a tracenet session against a simulated network: a
// path trace that collects, at every hop, the complete subnet accommodating
// the responding interface (Tozal & Sarac, IMC 2010).
//
// Usage:
//
//	tracenet [flags] [destination...]
//
//	-topo name|file   built-in topology (figure3, figure2, chain, internet2,
//	                  geant, isps, random) or a topology JSON file; default figure3
//	-vantage host     vantage host name (default: the topology's default)
//	-proto p          probe protocol: icmp (default), udp, tcp
//	-maxttl n         maximum trace length (default 30)
//	-seed n           simulation seed
//	-subnets          print the collected subnet inventory after the trace
//	-debug            log every probe exchange to stderr
//
// Without destinations, the topology's suggested targets are traced.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tracenet/internal/cli"
	"tracenet/internal/core"
	"tracenet/internal/ipv4"
	"tracenet/internal/netsim"
	"tracenet/internal/probe"
)

func main() {
	var (
		topoName = flag.String("topo", "figure3", "built-in topology name or JSON file")
		vantage  = flag.String("vantage", "", "vantage host name")
		protoStr = flag.String("proto", "icmp", "probe protocol: icmp, udp, tcp")
		maxTTL   = flag.Int("maxttl", 30, "maximum trace length")
		seed     = flag.Int64("seed", 1, "simulation seed")
		subnets  = flag.Bool("subnets", false, "print the collected subnet inventory")
		debug    = flag.Bool("debug", false, "log every probe exchange to stderr")
	)
	flag.Parse()
	if err := run(os.Stdout, *topoName, *vantage, *protoStr, *maxTTL, *seed, *subnets, *debug, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "tracenet:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, topoName, vantage, protoStr string, maxTTL int, seed int64, printSubnets, debug bool, args []string) error {
	sc, err := cli.Load(topoName, seed)
	if err != nil {
		return err
	}
	if vantage == "" {
		vantage = sc.Vantage
	}
	var proto probe.Protocol
	switch protoStr {
	case "icmp":
		proto = probe.ICMP
	case "udp":
		proto = probe.UDP
	case "tcp":
		proto = probe.TCP
	default:
		return fmt.Errorf("unknown protocol %q", protoStr)
	}

	dests := sc.Destinations
	if len(args) > 0 {
		dests = dests[:0]
		for _, a := range args {
			d, err := ipv4.ParseAddr(a)
			if err != nil {
				return err
			}
			dests = append(dests, d)
		}
	}
	if len(dests) == 0 {
		return fmt.Errorf("no destinations: pass one or more addresses")
	}

	net := netsim.New(sc.Topo, netsim.Config{Seed: seed})
	port, err := net.PortFor(vantage)
	if err != nil {
		return err
	}
	var tr probe.Transport = port
	if debug {
		tr = probe.LoggingTransport{Inner: port, W: os.Stderr}
	}
	pr := probe.New(tr, port.LocalAddr(), probe.Options{Protocol: proto, Cache: true})
	sess := core.NewSession(pr, core.Config{MaxTTL: maxTTL})

	fmt.Fprintf(w, "tracenet over %s, vantage %s (%v), %s probes\n",
		sc.Description, vantage, port.LocalAddr(), proto)
	for _, dst := range dests {
		res, err := sess.Trace(dst)
		if err != nil {
			return err
		}
		fmt.Fprint(w, res)
	}
	if printSubnets {
		fmt.Fprintf(w, "\ncollected subnets (%d):\n", len(sess.Subnets()))
		for _, s := range sess.Subnets() {
			fmt.Fprintln(w, " ", s)
		}
	}
	st := pr.Stats()
	fmt.Fprintf(w, "\nprobes sent %d, answered %d, retried %d, served from cache %d\n",
		st.Sent, st.Answered, st.Retries, st.Cached)
	return nil
}
