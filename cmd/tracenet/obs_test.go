package main

// Tests for the live observability plane flags: -serve, -progress,
// -stall-window, -log-level, and the signal-triggered snapshot-and-drain.
// Real signals are replaced by the options.shutdown test hook, and the bound
// address is observed through options.onServe.

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

func httpGet(t *testing.T, base, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// waitCampaignFinished polls /campaigns until the registered campaign reports
// finished (the plane keeps serving after the run's work completes, so the
// poll always converges unless the campaign itself hangs).
func waitCampaignFinished(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := httpGet(t, base, "/campaigns")
		if code == http.StatusOK && strings.Contains(body, `"finished": true`) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("campaign never reported finished on /campaigns")
}

// serveRun launches run in the background with the serve hooks installed and
// returns the plane's base URL plus channels to finish the run.
func serveRun(t *testing.T, b *strings.Builder, o options) (base string, shutdown chan struct{}, done chan error) {
	t.Helper()
	shutdown = make(chan struct{})
	addrCh := make(chan string, 1)
	o.serve = ":0"
	o.shutdown = shutdown
	o.onServe = func(a string) { addrCh <- a }
	done = make(chan error, 1)
	go func() { done <- run(b, o) }()
	select {
	case a := <-addrCh:
		return "http://" + a, shutdown, done
	case err := <-done:
		t.Fatalf("run exited before serving: %v", err)
		return "", nil, nil
	}
}

func TestRunServeCampaignLiveEndpoints(t *testing.T) {
	var b strings.Builder
	base, shutdown, done := serveRun(t, &b, options{
		topo: "random", proto: "icmp", maxTTL: 30, seed: 3, campaign: true, parallel: 4,
	})
	waitCampaignFinished(t, base)

	for _, path := range []string{"/", "/metrics", "/metrics.json", "/healthz",
		"/readyz", "/logz", "/campaigns", "/flightz", "/debug/pprof/"} {
		if code, _ := httpGet(t, base, path); code != http.StatusOK {
			t.Errorf("GET %s = %d, want 200", path, code)
		}
	}
	if _, body := httpGet(t, base, "/metrics"); !strings.Contains(body, "tracenet_campaign_workers_inflight 0") {
		t.Errorf("/metrics lacks the settled in-flight gauge:\n%s", body)
	}
	if _, body := httpGet(t, base, "/readyz"); !strings.Contains(body, "ready") || strings.Contains(body, "fail ") {
		t.Errorf("/readyz not clean after a completed campaign:\n%s", body)
	}
	if _, body := httpGet(t, base, "/logz"); !strings.Contains(body, `"msg":"target done"`) {
		t.Errorf("/logz lacks target-done records:\n%s", body)
	}
	if _, body := httpGet(t, base, "/flightz"); !strings.Contains(body, "flight recorder snapshot") {
		t.Errorf("/flightz is not a recorder snapshot:\n%s", body)
	}

	close(shutdown)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"observability plane on http://",
		"observability plane serving", "merged subnet map"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunServeSingleSession(t *testing.T) {
	var b strings.Builder
	base, shutdown, done := serveRun(t, &b, options{
		topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1, dests: []string{"10.0.5.2"},
	})
	if code, body := httpGet(t, base, "/healthz"); code != http.StatusOK || !strings.Contains(body, "ok tick=") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if _, body := httpGet(t, base, "/campaigns"); !strings.Contains(body, `"campaigns": []`) {
		t.Errorf("single-session run should publish no campaigns:\n%s", body)
	}
	close(shutdown)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "probes sent") {
		t.Errorf("trace did not run to completion:\n%s", b.String())
	}
}

// The drain path (SIGTERM stand-in) must write byte-identical telemetry
// artifacts to a clean exit of the same run.
func TestRunServeDrainMatchesCleanExitArtifacts(t *testing.T) {
	artifacts := func(serve bool) map[string]string {
		t.Helper()
		dir := t.TempDir()
		o := options{topo: "random", proto: "icmp", maxTTL: 30, seed: 3, campaign: true, parallel: 1,
			metricsOut: filepath.Join(dir, "metrics.txt"),
			traceOut:   filepath.Join(dir, "trace.json"),
			flightOut:  filepath.Join(dir, "flight.txt")}
		var b strings.Builder
		if serve {
			base, shutdown, done := serveRun(t, &b, o)
			waitCampaignFinished(t, base)
			close(shutdown)
			if err := <-done; err != nil {
				t.Fatal(err)
			}
		} else if err := run(&b, o); err != nil {
			t.Fatal(err)
		}
		arts := make(map[string]string)
		for _, name := range []string{"metrics.txt", "trace.json", "flight.txt"} {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			arts[name] = string(data)
		}
		return arts
	}
	clean, drained := artifacts(false), artifacts(true)
	for name, want := range clean {
		if drained[name] != want {
			t.Errorf("%s differs between clean exit and signal drain:\n--- clean\n%s--- drained\n%s",
				name, want, drained[name])
		}
	}
}

// -progress counts completions locally, so the printed stream is identical at
// any parallelism even though which target finishes at each step is not.
func TestRunProgressDeterministicAcrossParallel(t *testing.T) {
	progressRun := func(parallel int) string {
		t.Helper()
		var b strings.Builder
		o := options{topo: "random", proto: "icmp", maxTTL: 30, seed: 3, progress: true, parallel: parallel}
		if err := run(&b, o); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	p1, p8 := progressRun(1), progressRun(8)
	if p1 != p8 {
		t.Errorf("-progress output differs between -parallel 1 and -parallel 8:\n--- p1\n%s--- p8\n%s", p1, p8)
	}

	lines := regexp.MustCompile(`progress: (\d+)/(\d+) targets`).FindAllStringSubmatch(p1, -1)
	if len(lines) == 0 {
		t.Fatalf("-progress printed no progress lines:\n%s", p1)
	}
	total := lines[0][2]
	if got := fmt.Sprintf("%d", len(lines)); got != total {
		t.Errorf("printed %d progress lines for %s targets", len(lines), total)
	}
	if last := lines[len(lines)-1]; last[1] != last[2] {
		t.Errorf("final progress line %q does not account for every target", last[0])
	}
}

func TestRunBadLogLevel(t *testing.T) {
	var b strings.Builder
	o := options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		debug: true, logLevel: "loud", dests: []string{"10.0.5.2"}}
	if err := run(&b, o); err == nil || !strings.Contains(err.Error(), "level") {
		t.Errorf("bad -log-level accepted: %v", err)
	}
}

// Every armed flight-recorder artifact ends with the final snapshot, whether
// or not any incident fired during the run.
func TestRunFlightFinalSnapshot(t *testing.T) {
	out := filepath.Join(t.TempDir(), "flight.txt")
	var b strings.Builder
	o := options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		flightOut: out, dests: []string{"10.0.5.2"}}
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "flight recorder snapshot at tick") ||
		!strings.Contains(string(data), "end of run") {
		t.Errorf("flight artifact lacks the final snapshot:\n%s", data)
	}
	if strings.Contains(string(data), "flight recorder dump #") {
		t.Errorf("clean run recorded an incident dump:\n%s", data)
	}
}
