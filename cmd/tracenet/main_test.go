package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultScenario(t *testing.T) {
	var b strings.Builder
	if err := run(&b, options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1, subnets: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"tracenet to 10.0.5.2", "reached=true",
		"subnet 10.0.2.0/29", "collected subnets (4)", "probes sent"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "degraded subnets") {
		t.Errorf("fault-free run reports degraded subnets:\n%s", out)
	}
}

func TestRunExplicitDestination(t *testing.T) {
	var b strings.Builder
	if err := run(&b, options{topo: "chain", proto: "udp", maxTTL: 30, seed: 1,
		dests: []string{"10.9.255.2"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "reached=true") {
		t.Fatalf("chain trace failed:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	base := options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1}
	bad := base
	bad.proto = "bogus"
	if err := run(&b, bad); err == nil {
		t.Error("bad protocol accepted")
	}
	bad = base
	bad.topo = "no-such-topo"
	if err := run(&b, bad); err == nil {
		t.Error("bad topology accepted")
	}
	bad = base
	bad.vantage = "nobody"
	if err := run(&b, bad); err == nil {
		t.Error("bad vantage accepted")
	}
	bad = base
	bad.dests = []string{"not-an-ip"}
	if err := run(&b, bad); err == nil {
		t.Error("bad destination accepted")
	}
	bad = base
	bad.faults = filepath.Join(t.TempDir(), "missing.json")
	if err := run(&b, bad); err == nil {
		t.Error("missing fault plan accepted")
	}
	bad = base
	bad.ckptIn = filepath.Join(t.TempDir(), "missing.json")
	if err := run(&b, bad); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

func TestRunChaosSeed(t *testing.T) {
	var b strings.Builder
	if err := run(&b, options{topo: "internet2", proto: "icmp", maxTTL: 30, seed: 1,
		chaos: 7, backoff: true, breaker: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"resilience:", "faults injected:"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunFaultPlanFile(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(plan, []byte(`{"seed": 3, "faults": [
		{"kind": "corrupt", "prob": 0.4}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		faults: plan}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "faults injected:") {
		t.Fatalf("fault plan run lacks fault stats:\n%s", b.String())
	}
}

func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "session.json")
	var b1 strings.Builder
	if err := run(&b1, options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		ckptOut: ckpt}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b1.String(), "checkpoint written") {
		t.Fatalf("no checkpoint confirmation:\n%s", b1.String())
	}
	var b2 strings.Builder
	if err := run(&b2, options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		ckptIn: ckpt}); err != nil {
		t.Fatal(err)
	}
	out := b2.String()
	if !strings.Contains(out, "resumed from") {
		t.Fatalf("no resume confirmation:\n%s", out)
	}
	if !strings.Contains(out, "already completed in checkpoint, skipped") {
		t.Fatalf("resumed run did not skip completed destination:\n%s", out)
	}
}
