package main

import (
	"strings"
	"testing"
)

func TestRunDefaultScenario(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "figure3", "", "icmp", 30, 1, true, false, nil); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"tracenet to 10.0.5.2", "reached=true",
		"subnet 10.0.2.0/29", "collected subnets (4)", "probes sent"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunExplicitDestination(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "chain", "", "udp", 30, 1, false, false, []string{"10.9.255.2"}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "reached=true") {
		t.Fatalf("chain trace failed:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "figure3", "", "bogus", 30, 1, false, false, nil); err == nil {
		t.Error("bad protocol accepted")
	}
	if err := run(&b, "no-such-topo", "", "icmp", 30, 1, false, false, nil); err == nil {
		t.Error("bad topology accepted")
	}
	if err := run(&b, "figure3", "nobody", "icmp", 30, 1, false, false, nil); err == nil {
		t.Error("bad vantage accepted")
	}
	if err := run(&b, "figure3", "", "icmp", 30, 1, false, false, []string{"not-an-ip"}); err == nil {
		t.Error("bad destination accepted")
	}
}
