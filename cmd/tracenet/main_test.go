package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultScenario(t *testing.T) {
	var b strings.Builder
	if err := run(&b, options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1, subnets: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"tracenet to 10.0.5.2", "reached=true",
		"subnet 10.0.2.0/29", "collected subnets (4)", "probes sent"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "degraded subnets") {
		t.Errorf("fault-free run reports degraded subnets:\n%s", out)
	}
}

func TestRunExplicitDestination(t *testing.T) {
	var b strings.Builder
	if err := run(&b, options{topo: "chain", proto: "udp", maxTTL: 30, seed: 1,
		dests: []string{"10.9.255.2"}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "reached=true") {
		t.Fatalf("chain trace failed:\n%s", b.String())
	}
}

func TestRunErrors(t *testing.T) {
	var b strings.Builder
	base := options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1}
	bad := base
	bad.proto = "bogus"
	if err := run(&b, bad); err == nil {
		t.Error("bad protocol accepted")
	}
	bad = base
	bad.topo = "no-such-topo"
	if err := run(&b, bad); err == nil {
		t.Error("bad topology accepted")
	}
	bad = base
	bad.vantage = "nobody"
	if err := run(&b, bad); err == nil {
		t.Error("bad vantage accepted")
	}
	bad = base
	bad.dests = []string{"not-an-ip"}
	if err := run(&b, bad); err == nil {
		t.Error("bad destination accepted")
	}
	bad = base
	bad.faults = filepath.Join(t.TempDir(), "missing.json")
	if err := run(&b, bad); err == nil {
		t.Error("missing fault plan accepted")
	}
	bad = base
	bad.ckptIn = filepath.Join(t.TempDir(), "missing.json")
	if err := run(&b, bad); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

func TestRunChaosSeed(t *testing.T) {
	var b strings.Builder
	if err := run(&b, options{topo: "internet2", proto: "icmp", maxTTL: 30, seed: 1,
		chaos: 7, backoff: true, breaker: true}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"resilience:", "faults injected:"} {
		if !strings.Contains(out, want) {
			t.Errorf("chaos output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunFaultPlanFile(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(plan, []byte(`{"seed": 3, "faults": [
		{"kind": "corrupt", "prob": 0.4}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		faults: plan}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "faults injected:") {
		t.Fatalf("fault plan run lacks fault stats:\n%s", b.String())
	}
}

func TestRunAdversarialPlanDefended(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "byzantine.json")
	if err := os.WriteFile(plan, []byte(`{"seed": 3, "faults": [
		{"kind": "liar", "prob": 0.4},
		{"kind": "alias-confuse"},
		{"kind": "hidden-hop", "router": "R3"},
		{"kind": "echo", "prob": 0.3}
	]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	collect := func() string {
		var b strings.Builder
		if err := run(&b, options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
			faults: plan, defend: true, subnets: true}); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	out := collect()
	for _, want := range []string{"faults injected:", "byzantine replies:", "defense: cross-check probes"} {
		if !strings.Contains(out, want) {
			t.Errorf("adversarial output lacks %q:\n%s", want, out)
		}
	}
	// Same seed, same plan: the defended run must be byte-identical.
	if again := collect(); again != out {
		t.Errorf("same-seed defended runs differ:\n--- first\n%s\n--- second\n%s", out, again)
	}
}

func TestRunRejectsUnknownFaultKind(t *testing.T) {
	plan := filepath.Join(t.TempDir(), "bogus.json")
	if err := os.WriteFile(plan, []byte(`{"seed": 1, "faults": [{"kind": "gremlin"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	err := run(&b, options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1, faults: plan})
	if err == nil || !strings.Contains(err.Error(), "unknown fault kind") {
		t.Fatalf("unknown fault kind not rejected: %v", err)
	}
}

func TestRunCheckpointResume(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "session.json")
	var b1 strings.Builder
	if err := run(&b1, options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		ckptOut: ckpt}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b1.String(), "checkpoint written") {
		t.Fatalf("no checkpoint confirmation:\n%s", b1.String())
	}
	var b2 strings.Builder
	if err := run(&b2, options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		ckptIn: ckpt}); err != nil {
		t.Fatal(err)
	}
	out := b2.String()
	if !strings.Contains(out, "resumed from") {
		t.Fatalf("no resume confirmation:\n%s", out)
	}
	if !strings.Contains(out, "already completed in checkpoint, skipped") {
		t.Fatalf("resumed run did not skip completed destination:\n%s", out)
	}
}

// telemetryOpts returns a faultless figure-3 run writing every telemetry
// artifact into dir.
func telemetryOpts(dir string) options {
	return options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		metricsOut: filepath.Join(dir, "metrics.prom"),
		traceOut:   filepath.Join(dir, "trace.json"),
	}
}

func TestRunTelemetryArtifacts(t *testing.T) {
	dir := t.TempDir()
	o := telemetryOpts(dir)
	var b strings.Builder
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"metrics written to", "trace written to"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks %q:\n%s", want, out)
		}
	}

	metrics, err := os.ReadFile(o.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE tracenet_probe_sent_total counter",
		`tracenet_probe_sent_total{proto="icmp"}`,
		"tracenet_netsim_clock_ticks",
		`tracenet_session_probes_total{phase="trace"}`,
		`tracenet_probe_reply_ttl_bucket{proto="icmp",le="64"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics lack %q:\n%s", want, metrics)
		}
	}

	trace, err := os.ReadFile(o.traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(trace, &events); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range events {
		seen[ev["name"].(string)] = true
	}
	for _, want := range []string{"trace", "hop", "position", "explore", "probe"} {
		if !seen[want] {
			t.Errorf("trace lacks %q spans; saw %v", want, seen)
		}
	}
}

func TestRunTelemetryJSONMetrics(t *testing.T) {
	dir := t.TempDir()
	o := telemetryOpts(dir)
	o.metricsOut = filepath.Join(dir, "metrics.json")
	var b strings.Builder
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("JSON metrics do not parse: %v", err)
	}
	if snap.Counters[`tracenet_probe_sent_total{proto="icmp"}`] == 0 {
		t.Errorf("JSON metrics lack probe counter:\n%s", data)
	}
}

// TestRunTelemetryDeterministic is the acceptance check for the determinism
// contract: two runs with the same seed and flags produce byte-identical
// metrics and trace artifacts.
func TestRunTelemetryDeterministic(t *testing.T) {
	artifacts := func(dir string) (metrics, trace []byte) {
		t.Helper()
		o := telemetryOpts(dir)
		var b strings.Builder
		if err := run(&b, o); err != nil {
			t.Fatal(err)
		}
		metrics, err := os.ReadFile(o.metricsOut)
		if err != nil {
			t.Fatal(err)
		}
		trace, err = os.ReadFile(o.traceOut)
		if err != nil {
			t.Fatal(err)
		}
		return metrics, trace
	}
	m1, t1 := artifacts(t.TempDir())
	m2, t2 := artifacts(t.TempDir())
	if !bytes.Equal(m1, m2) {
		t.Errorf("same-seed metrics differ:\n--- run 1\n%s\n--- run 2\n%s", m1, m2)
	}
	if !bytes.Equal(t1, t2) {
		t.Error("same-seed traces differ")
	}
}

// TestRunFaultedDumpsFlightRecorder exercises the incident path end to end: a
// chaotic run with the breaker armed must leave post-mortem dumps in the
// -flight-recorder file.
func TestRunFaultedDumpsFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	o := options{topo: "internet2", proto: "icmp", maxTTL: 30, seed: 1,
		chaos: 7, backoff: true, breaker: true,
		flightOut: filepath.Join(dir, "flight.txt"),
	}
	var b strings.Builder
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "flight recorder:") {
		t.Errorf("no flight recorder summary line:\n%s", b.String())
	}
	dump, err := os.ReadFile(o.flightOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dump), "flight recorder dump #1") {
		t.Fatalf("faulted run produced no flight-recorder dump:\n%s", dump)
	}
	if !strings.Contains(string(dump), "icmp ") {
		t.Errorf("dump holds no probe history:\n%s", dump)
	}
}

func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	o := options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		cpuProfile: filepath.Join(dir, "cpu.pprof"),
		memProfile: filepath.Join(dir, "mem.pprof"),
	}
	var b strings.Builder
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{o.cpuProfile, o.memProfile} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestRunCampaignMode(t *testing.T) {
	var b strings.Builder
	o := options{topo: "random", proto: "icmp", maxTTL: 30, seed: 3, parallel: 4}
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"tracenet campaign over random topology",
		"campaign:", "merged subnet map", "wire probes", "cache hits"} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunCampaignDeterministicAcrossParallel(t *testing.T) {
	campaign := func(parallel int) string {
		t.Helper()
		var b strings.Builder
		o := options{topo: "random", proto: "icmp", maxTTL: 30, seed: 3, campaign: true, parallel: parallel}
		if err := run(&b, o); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	p1, p8 := campaign(1), campaign(8)
	if p1 != p8 {
		t.Errorf("campaign output differs between -parallel 1 and -parallel 8:\n--- p1\n%s--- p8\n%s", p1, p8)
	}
}

func TestRunCampaignTargetsFile(t *testing.T) {
	dir := t.TempDir()
	tf := filepath.Join(dir, "targets.txt")
	if err := os.WriteFile(tf, []byte("# figure3 leaves\n10.0.5.2\n\n10.0.4.2 # inline comment\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	o := options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1, targets: tf, parallel: 2}
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "campaign: 2 targets (done 2") {
		t.Fatalf("targets file not honoured:\n%s", out)
	}
	for _, want := range []string{"10.0.5.2", "10.0.4.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("output lacks target %q:\n%s", want, out)
		}
	}
}

func TestRunCampaignCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	cp := filepath.Join(dir, "campaign.json")
	var b strings.Builder
	o := options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1, parallel: 2, campaignOut: cp}
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "campaign checkpoint written to") {
		t.Fatalf("no checkpoint confirmation:\n%s", b.String())
	}

	b.Reset()
	o = options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1, parallel: 2, campaignResume: cp}
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "resuming campaign from") {
		t.Fatalf("no resume banner:\n%s", out)
	}
	if !strings.Contains(out, "wire probes 0") {
		t.Errorf("fully-resumed campaign probed anyway:\n%s", out)
	}
}

func TestRunCampaignErrors(t *testing.T) {
	var b strings.Builder
	o := options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1, parallel: 2,
		ckptOut: filepath.Join(t.TempDir(), "session.json")}
	if err := run(&b, o); err == nil {
		t.Error("campaign mode accepted single-session -checkpoint flag")
	}
	o = options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		targets: filepath.Join(t.TempDir(), "missing.txt")}
	if err := run(&b, o); err == nil {
		t.Error("missing targets file accepted")
	}
	tf := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(tf, []byte("not-an-ip\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	o = options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1, targets: tf}
	if err := run(&b, o); err == nil {
		t.Error("bad targets file accepted")
	}
}

func TestRunEvalCleanChainPerfect(t *testing.T) {
	dir := t.TempDir()
	evalRun := func(out string) string {
		t.Helper()
		var b strings.Builder
		o := options{topo: "chain", proto: "icmp", maxTTL: 30, seed: 1,
			eval: true, evalOut: out, dests: []string{"10.9.255.2"}}
		if err := run(&b, o); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	out1 := evalRun(filepath.Join(dir, "eval1.json"))
	for _, want := range []string{
		"ground-truth eval: 9 true subnets, 9 collected",
		"subnet precision 1.000 (9/9 exact), recall 1.000 (9/9 matched exactly)",
		"address precision 1.000 (18/18), recall 1.000 (18/18)",
		"verdicts: exact 9",
	} {
		if !strings.Contains(out1, want) {
			t.Errorf("eval output lacks %q:\n%s", want, out1)
		}
	}

	// Rerun with identical flags: console output and JSON artifact must be
	// byte-identical.
	out2 := evalRun(filepath.Join(dir, "eval2.json"))
	if norm := strings.ReplaceAll(out2, "eval2.json", "eval1.json"); norm != out1 {
		t.Errorf("eval output differs across reruns:\n--- 1\n%s--- 2\n%s", out1, out2)
	}
	js1, err := os.ReadFile(filepath.Join(dir, "eval1.json"))
	if err != nil {
		t.Fatal(err)
	}
	js2, err := os.ReadFile(filepath.Join(dir, "eval2.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(js1, js2) {
		t.Errorf("eval JSON artifacts differ across reruns:\n--- 1\n%s--- 2\n%s", js1, js2)
	}

	var doc struct {
		SubnetPrecision float64        `json:"subnet_precision"`
		SubnetRecall    float64        `json:"subnet_recall"`
		Verdicts        map[string]int `json:"verdicts"`
	}
	if err := json.Unmarshal(js1, &doc); err != nil {
		t.Fatalf("eval artifact does not parse: %v\n%s", err, js1)
	}
	if doc.SubnetPrecision != 1 || doc.SubnetRecall != 1 || doc.Verdicts["exact"] != 9 {
		t.Errorf("eval artifact scores = %+v", doc)
	}
}

func TestRunEvalCampaign(t *testing.T) {
	var b strings.Builder
	o := options{topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1,
		campaign: true, parallel: 2, eval: true,
		dests: []string{"10.0.3.1", "10.0.4.1", "10.0.5.2"}}
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Figure 3's LAN is a /24 with only four assigned addresses, so the
	// minimal covering /29 is the best any collector can infer: 5 exact plus
	// one subset, with perfect address-level accuracy.
	for _, want := range []string{
		"ground-truth eval: 6 true subnets, 6 collected",
		"verdicts: exact 5 subset 1",
		"address precision 1.000 (14/14), recall 1.000 (14/14)",
		"10.0.2.0/29        subset    true 10.0.2.0/24 members 4/4 k=+5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("campaign eval output lacks %q:\n%s", want, out)
		}
	}
}

func TestRunEvalCoreAndTelemetry(t *testing.T) {
	dir := t.TempDir()
	mf := filepath.Join(dir, "metrics.txt")
	var b strings.Builder
	o := options{topo: "chain", proto: "icmp", maxTTL: 30, seed: 1,
		evalCore: true, metricsOut: mf, dests: []string{"10.9.255.2"}}
	if err := run(&b, o); err != nil {
		t.Fatal(err)
	}
	// Core universe excludes the two host /30s: 7 true subnets; the two
	// collected host subnets become phantoms.
	out := b.String()
	if !strings.Contains(out, "ground-truth eval: 7 true subnets, 9 collected") {
		t.Errorf("core eval universe wrong:\n%s", out)
	}
	if !strings.Contains(out, "phantom 2") {
		t.Errorf("host subnets not scored as phantoms in core mode:\n%s", out)
	}
	metrics, err := os.ReadFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`tracenet_eval_subnets_total{verdict="exact"} 7`,
		`tracenet_eval_subnets_total{verdict="phantom"} 2`,
		"tracenet_eval_subnet_recall_ppm 1000000",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics exposition lacks %q:\n%s", want, metrics)
		}
	}
}

// TestRunSpecFile: -spec runs a tracenetd campaign spec locally, producing
// output byte-identical to the equivalent flag invocation — one submission
// file drives both the daemon and a one-shot CLI run.
func TestRunSpecFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	if err := os.WriteFile(path, []byte(
		`{"tenant": "alice", "topology": "random", "seed": 42, "parallel": 2, "eval": true, "priority": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var fromSpec strings.Builder
	if err := run(&fromSpec, options{spec: path, topo: "figure3", proto: "icmp", maxTTL: 30, seed: 1}); err != nil {
		t.Fatal(err)
	}
	var fromFlags strings.Builder
	if err := run(&fromFlags, options{topo: "random", proto: "icmp", maxTTL: 30, seed: 42,
		campaign: true, parallel: 2, eval: true}); err != nil {
		t.Fatal(err)
	}
	if fromSpec.String() != fromFlags.String() {
		t.Errorf("-spec output differs from equivalent flags:\n--- spec\n%s\n--- flags\n%s",
			fromSpec.String(), fromFlags.String())
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte(`{"tenant": "alice", "topology": "/etc/passwd"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := run(&b, options{spec: bad, proto: "icmp", maxTTL: 30}); err == nil {
		t.Error("spec with a file topology accepted")
	}
}
