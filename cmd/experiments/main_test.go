package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiments(t *testing.T) {
	cases := map[string][]string{
		"table1":     {"Internet2", "exact match rate"},
		"table2":     {"GEANT"},
		"overhead":   {"7|S|+7"},
		"heuristics": {"Stop-reason"},
		"routermap":  {"precision/recall"},
		"accuracy":   {"Ground-Truth Accuracy Ensemble", "committed floors:", "clean", "faulted", "ecmp"},
		"adversarial": {"Adversarial Robustness Ensemble", "committed floors", "liar",
			"alias-confuse", "hidden-hop", "echo", "byzantine"},
	}
	for what, wants := range cases {
		var b strings.Builder
		if err := run(&b, what, 1); err != nil {
			t.Fatalf("%s: %v", what, err)
		}
		for _, want := range wants {
			if !strings.Contains(b.String(), want) {
				t.Errorf("%s output lacks %q", what, want)
			}
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "nonsense", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}
