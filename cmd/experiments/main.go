// Command experiments regenerates every table and figure of the paper's
// evaluation (§4) plus the §3.6 overhead model and the DESIGN.md ablations,
// printing the same rows and series the paper reports.
//
// Usage:
//
//	experiments [-run what] [-seed n]
//
// what: all (default), table1, table2, table3, fig6, fig7, fig8, fig9,
// overhead, ablations, coverage, offline, routermap, heuristics, ingress,
// accuracy, adversarial.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"tracenet/internal/experiments"
	"tracenet/internal/report"
)

func main() {
	var (
		what = flag.String("run", "all", "experiment: all, table1, table2, table3, fig6, fig7, fig8, fig9, overhead, ablations, coverage, offline, routermap, heuristics, ingress, accuracy, adversarial")
		seed = flag.Int64("seed", 7, "experiment seed")
	)
	flag.Parse()
	if err := run(os.Stdout, strings.ToLower(*what), *seed); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, what string, seed int64) error {
	all := what == "all"
	sep := func() { fmt.Fprintln(w, strings.Repeat("-", 72)) }

	var isp *experiments.ISPResult
	needISP := all || strings.HasPrefix(what, "fig")
	if needISP {
		var err error
		isp, err = experiments.RunISP(seed)
		if err != nil {
			return err
		}
	}

	if all || what == "table1" {
		res, err := experiments.Table1Internet2(seed)
		if err != nil {
			return err
		}
		report.ResearchTable(w, res)
		sep()
	}
	if all || what == "table2" {
		res, err := experiments.Table2GEANT(seed)
		if err != nil {
			return err
		}
		report.ResearchTable(w, res)
		sep()
	}
	if all || what == "fig6" {
		report.Venn(w, isp)
		sep()
	}
	if all || what == "fig7" {
		report.IPDistribution(w, isp)
		sep()
	}
	if all || what == "fig8" {
		report.SubnetPerISP(w, isp)
		sep()
	}
	if all || what == "fig9" {
		report.PrefixDistribution(w, isp)
		sep()
	}
	if all || what == "table3" {
		rows, err := experiments.Table3(seed)
		if err != nil {
			return err
		}
		report.ProtocolTable(w, rows)
		sep()
	}
	if all || what == "overhead" {
		points, err := experiments.Overhead()
		if err != nil {
			return err
		}
		report.OverheadTable(w, points)
		sep()
	}
	if all || what == "ablations" {
		var results []experiments.AblationResult
		for _, f := range []func() (experiments.AblationResult, error){
			experiments.AblationBottomUp,
			experiments.AblationHalfFill,
			experiments.AblationTwoIngress,
			experiments.AblationRetry,
		} {
			r, err := f()
			if err != nil {
				return err
			}
			results = append(results, r)
		}
		report.Ablations(w, results)
		sep()
	}
	if all || what == "coverage" {
		c, err := experiments.Coverage(seed)
		if err != nil {
			return err
		}
		report.Coverage(w, c)
		sep()
	}
	if all || what == "offline" {
		r, err := experiments.OnlineVsOffline(seed)
		if err != nil {
			return err
		}
		report.OnlineVsOffline(w, r)
		sep()
	}
	if all || what == "routermap" {
		r, err := experiments.RouterMap(seed)
		if err != nil {
			return err
		}
		report.RouterMap(w, r)
		sep()
	}
	if all || what == "heuristics" {
		stats, err := experiments.HeuristicStats(seed)
		if err != nil {
			return err
		}
		report.HeuristicStats(w, stats)
		sep()
	}
	if all || what == "ingress" {
		frac, err := experiments.EntryLimitation()
		if err != nil {
			return err
		}
		report.EntryLimitation(w, frac)
		sep()
	}
	if all || what == "accuracy" {
		results, err := experiments.AccuracySweep(nil)
		if err != nil {
			return err
		}
		report.AccuracyTable(w, results)
		sep()
	}
	if all || what == "adversarial" {
		results, err := experiments.AdversarialSweep(nil)
		if err != nil {
			return err
		}
		report.AdversarialTable(w, results)
		sep()
	}

	switch what {
	case "all", "table1", "table2", "table3", "fig6", "fig7", "fig8", "fig9", "overhead", "ablations", "coverage", "offline", "routermap", "heuristics", "ingress", "accuracy", "adversarial":
		return nil
	}
	return fmt.Errorf("unknown experiment %q", what)
}
