// Package tracenet is a from-scratch Go reproduction of "TraceNET: An
// Internet Topology Data Collector" (Tozal & Sarac, ACM IMC 2010): a
// network-layer topology collector that returns, at every hop of a path
// trace, the complete subnet accommodating the responding interface.
//
// The repository root holds the benchmark harness (one benchmark per table
// and figure of the paper's evaluation, see bench_test.go); the library
// lives under internal/ — start with internal/core (the algorithm),
// internal/netsim (the simulated Internet substrate), and internal/topo
// (the evaluation topologies). DESIGN.md maps every paper artifact to the
// module and benchmark that reproduces it; EXPERIMENTS.md records
// paper-vs-measured values.
package tracenet
