#!/bin/sh
# Full verification gate: formatting, build, vet, the project's own static
# analysis suite (tracenetlint), race-enabled tests with runtime invariants
# compiled in, and a short fuzz smoke over the wire decoders.
# Everything here must stay green; the chaos tests (internal/netsim/chaos_test.go)
# are deterministic, so a failure is reproducible with the same seed.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go run ./cmd/tracenetlint ./..."
go run ./cmd/tracenetlint ./...

echo "== go test -race -tags invariants ./..."
go test -race -tags invariants ./...

# The campaign engine's determinism contract (identical merged topology and
# metrics at -parallel 1 and 8) is its core guarantee; exercise it explicitly
# under the race detector even when the full suite above is trimmed.
echo "== go test -race ./internal/collect/ (campaign engine)"
go test -race -count=1 ./internal/collect/

echo "== bench smoke (1 iteration per benchmark)"
go test -run '^$' -bench '^(BenchmarkProbeExchange|BenchmarkSingleTrace)(Telemetry)?$|^BenchmarkCampaign$' -benchtime 1x .
go test -run '^$' -bench . -benchtime 1x ./internal/telemetry/

echo "== fuzz smoke (internal/wire, 5s per target)"
for target in FuzzUnmarshalIPv4 FuzzUnmarshalICMP FuzzUnmarshalUDP FuzzUnmarshalTCP; do
    go test ./internal/wire/ -run '^$' -fuzz "^${target}\$" -fuzztime 5s
done

# govulncheck is not vendored; run it when the toolchain has it and the
# vulnerability database is reachable, but never fail the gate offline.
echo "== govulncheck (best effort)"
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./... || echo "govulncheck failed (offline or stale DB); continuing"
else
    echo "govulncheck not installed; skipping"
fi

echo "All checks passed."
