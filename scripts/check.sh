#!/bin/sh
# Full verification gate: formatting, build, vet, the project's own static
# analysis suite (tracenetlint), race-enabled tests with runtime invariants
# compiled in, and a short fuzz smoke over the wire decoders.
# Everything here must stay green; the chaos tests (internal/netsim/chaos_test.go)
# are deterministic, so a failure is reproducible with the same seed.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go run ./cmd/tracenetlint ./..."
go run ./cmd/tracenetlint ./...

# Allocation-budget gate: recompile the hot probe-path packages with escape
# analysis (-m=2) and fail on any heap escape not recorded in
# internal/lint/allocbudget/budgets.txt. A deliberate new allocation is
# admitted by regenerating the file (tracenetlint -allocbudget-write) so the
# diff shows up in review.
echo "== go run ./cmd/tracenetlint -allocbudget"
go run ./cmd/tracenetlint -allocbudget

echo "== go test -race -tags invariants ./..."
go test -race -tags invariants ./...

# The campaign engine's determinism contract (identical merged topology and
# metrics at -parallel 1 and 8) is its core guarantee, the observability
# plane reads live Progress state while campaign workers mutate it, and the
# daemon's tenant registry and scheduler are hammered from concurrent HTTP
# submissions (the tenant-budget invariant test); exercise all of them
# explicitly under the race detector even when the full suite above is
# trimmed.
echo "== go test -race ./internal/collect/ ./internal/obs/ ./internal/daemon/ ./cmd/tracenetd/ (campaign engine + observability plane + daemon)"
go test -race -count=1 ./internal/collect/ ./internal/obs/ ./internal/daemon/ ./cmd/tracenetd/

# The ground-truth accuracy floors (internal/experiments/accuracy.go) are the
# regression gate for collector accuracy: the seeded ensemble must stay at or
# above the committed per-regime precision/recall floors. The full suite above
# already runs this; the explicit invocation makes a floor violation stand out
# as its own gate failure.
echo "== ground-truth accuracy floors"
go test -count=1 -run '^TestAccuracyFloors$' ./internal/experiments/

# The adversarial floors (internal/experiments/adversarial.go) gate the
# byzantine regimes: undefended precision must actually collapse where the
# threat model says it does, and -defend must recover it to the committed
# per-regime floors.
echo "== adversarial accuracy floors"
go test -count=1 -run '^TestAdversarialFloors$' ./internal/experiments/

# End-to-end eval smoke: a clean deterministic topology must score perfectly.
echo "== tracenet -eval smoke (chain topology, must be exact)"
go run ./cmd/tracenet -topo chain -eval | grep "subnet precision 1.000"

echo "== bench smoke (1 iteration per benchmark) + warn-only baseline diff"
bench_tmp="$(mktemp)"
go test -run '^$' -bench '^(BenchmarkProbeExchange|BenchmarkSingleTrace)(Telemetry)?$|^BenchmarkCampaign(Progress)?$|^BenchmarkAccuracy$|^BenchmarkDaemonThroughput$' -benchmem -benchtime 1x . | tee "$bench_tmp"
go test -run '^$' -bench . -benchmem -benchtime 1x ./internal/telemetry/ | tee -a "$bench_tmp"
# Diff the smoke run against the newest committed baseline. The report is
# advisory (benchjson -compare always exits 0 on parseable input): 1x timing
# numbers are noise, but allocs/op is exact even at one iteration, so a real
# allocation regression is visible here before the hard allocbudget gate
# pins down which function caused it.
bench_baseline="$(ls BENCH_*.json | sort | tail -1)"
echo "== benchjson -compare $bench_baseline (warn-only)"
go run ./cmd/benchjson -compare "$bench_baseline" < "$bench_tmp"
rm -f "$bench_tmp"

echo "== fuzz smoke (wire decoders + groundtruth scoring + fault plans, 5s per target)"
for target in FuzzUnmarshalIPv4 FuzzUnmarshalICMP FuzzUnmarshalUDP FuzzUnmarshalTCP; do
    go test ./internal/wire/ -run '^$' -fuzz "^${target}\$" -fuzztime 5s
done
go test ./internal/groundtruth/ -run '^$' -fuzz '^FuzzScoreInvariants$' -fuzztime 5s
go test ./internal/netsim/ -run '^$' -fuzz '^FuzzReadFaultPlan$' -fuzztime 5s

# govulncheck: known-vulnerability scan over the module and its (stdlib-only)
# dependency graph, pinned so CI and local runs agree on the checker version.
# It needs the binary installed and a reachable vulnerability database, so
# offline environments must opt out *explicitly* with
# TRACENET_SKIP_GOVULNCHECK=1 — a missing binary fails the gate rather than
# silently passing as it used to.
GOVULNCHECK_VERSION="v1.1.4"
echo "== govulncheck ($GOVULNCHECK_VERSION)"
if [ "${TRACENET_SKIP_GOVULNCHECK:-0}" = "1" ]; then
    echo "skipped: TRACENET_SKIP_GOVULNCHECK=1"
elif command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./...
else
    echo "govulncheck is not installed; install the pinned version with" >&2
    echo "    go install golang.org/x/vuln/cmd/govulncheck@$GOVULNCHECK_VERSION" >&2
    echo "or skip explicitly in offline environments with TRACENET_SKIP_GOVULNCHECK=1" >&2
    exit 1
fi

echo "All checks passed."
