#!/bin/sh
# Full verification gate: build, vet, and race-enabled tests.
# Everything here must stay green; the chaos tests (internal/netsim/chaos_test.go)
# are deterministic, so a failure is reproducible with the same seed.
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test -race ./..."
go test -race ./...
echo "All checks passed."
