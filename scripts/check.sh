#!/bin/sh
# Full verification gate: formatting, build, vet, the project's own static
# analysis suite (tracenetlint), race-enabled tests with runtime invariants
# compiled in, and a short fuzz smoke over the wire decoders.
# Everything here must stay green; the chaos tests (internal/netsim/chaos_test.go)
# are deterministic, so a failure is reproducible with the same seed.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go run ./cmd/tracenetlint ./..."
go run ./cmd/tracenetlint ./...

echo "== go test -race -tags invariants ./..."
go test -race -tags invariants ./...

# The campaign engine's determinism contract (identical merged topology and
# metrics at -parallel 1 and 8) is its core guarantee; exercise it explicitly
# under the race detector even when the full suite above is trimmed.
echo "== go test -race ./internal/collect/ (campaign engine)"
go test -race -count=1 ./internal/collect/

# The ground-truth accuracy floors (internal/experiments/accuracy.go) are the
# regression gate for collector accuracy: the seeded ensemble must stay at or
# above the committed per-regime precision/recall floors. The full suite above
# already runs this; the explicit invocation makes a floor violation stand out
# as its own gate failure.
echo "== ground-truth accuracy floors"
go test -count=1 -run '^TestAccuracyFloors$' ./internal/experiments/

# The adversarial floors (internal/experiments/adversarial.go) gate the
# byzantine regimes: undefended precision must actually collapse where the
# threat model says it does, and -defend must recover it to the committed
# per-regime floors.
echo "== adversarial accuracy floors"
go test -count=1 -run '^TestAdversarialFloors$' ./internal/experiments/

# End-to-end eval smoke: a clean deterministic topology must score perfectly.
echo "== tracenet -eval smoke (chain topology, must be exact)"
go run ./cmd/tracenet -topo chain -eval | grep "subnet precision 1.000"

echo "== bench smoke (1 iteration per benchmark)"
go test -run '^$' -bench '^(BenchmarkProbeExchange|BenchmarkSingleTrace)(Telemetry)?$|^BenchmarkCampaign$|^BenchmarkAccuracy$' -benchtime 1x .
go test -run '^$' -bench . -benchtime 1x ./internal/telemetry/

echo "== fuzz smoke (wire decoders + groundtruth scoring + fault plans, 5s per target)"
for target in FuzzUnmarshalIPv4 FuzzUnmarshalICMP FuzzUnmarshalUDP FuzzUnmarshalTCP; do
    go test ./internal/wire/ -run '^$' -fuzz "^${target}\$" -fuzztime 5s
done
go test ./internal/groundtruth/ -run '^$' -fuzz '^FuzzScoreInvariants$' -fuzztime 5s
go test ./internal/netsim/ -run '^$' -fuzz '^FuzzReadFaultPlan$' -fuzztime 5s

# govulncheck is not vendored; run it when the toolchain has it and the
# vulnerability database is reachable, but never fail the gate offline.
echo "== govulncheck (best effort)"
if command -v govulncheck >/dev/null 2>&1; then
    govulncheck ./... || echo "govulncheck failed (offline or stale DB); continuing"
else
    echo "govulncheck not installed; skipping"
fi

echo "All checks passed."
