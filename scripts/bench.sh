#!/bin/sh
# Benchmark baseline: run the hot-path and telemetry benchmarks and write the
# parsed results as BENCH_<date>.json (via cmd/benchjson), so perf regressions
# show up as a reviewable diff against the committed baseline.
#
# Environment overrides:
#   BENCH_DATE      date stamp for the output name and document (default: today, UTC)
#   BENCH_OUT       output file (default: BENCH_${BENCH_DATE}.json)
#   BENCH_PATTERN   -bench regexp (default: hot paths + their telemetry variants)
#   BENCH_TIME      -benchtime (default 0.5s; CI smoke uses 1x)
set -eu
cd "$(dirname "$0")/.."

DATE="${BENCH_DATE:-$(date -u +%Y%m%d)}"
OUT="${BENCH_OUT:-BENCH_${DATE}.json}"
PATTERN="${BENCH_PATTERN:-^(BenchmarkProbeExchange|BenchmarkSingleTrace)(Telemetry)?$|^BenchmarkCampaign(Progress|Scaling|10k)?$|^BenchmarkDaemonThroughput$}"
TIME="${BENCH_TIME:-0.5s}"

tmp="$(mktemp)"
trap 'rm -f "$tmp"' EXIT

echo "== go test -bench (repo hot paths, pattern $PATTERN)"
go test -run '^$' -bench "$PATTERN" -benchmem -benchtime "$TIME" . | tee "$tmp"

echo "== go test -bench (internal/telemetry)"
go test -run '^$' -bench . -benchmem -benchtime "$TIME" ./internal/telemetry/ | tee -a "$tmp"

go run ./cmd/benchjson -date "$DATE" < "$tmp" > "$OUT"
echo "benchmark baseline written to $OUT"
