module tracenet

go 1.22
